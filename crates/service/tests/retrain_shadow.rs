//! Shadow-deployment invariants, end to end over the wire.
//!
//! The promotion pipeline's contract: a retrain candidate riding the
//! serve path as a shadow **never** answers a live frame before it is
//! promoted (cache epoch, registry version, and the verdict stream all
//! pinned); a divergent candidate is discarded without a registry
//! publish; and a promoted candidate reaches a fleet only through the
//! staged rollout gate — including across a node killed mid-shadow.

mod common;

use browser_engine::{UserAgent, Vendor};
use common::for_each_backend;
use fingerprint::{FeatureSet, Submission};
use polygraph_core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use polygraph_service::orchestrator::metric_names as orch_metrics;
use polygraph_service::{
    start_risk_server_with, FleetClient, FleetConfig, ModelRegistry, Orchestrator,
    OrchestratorConfig, RetrainOutcome, RiskClient, RiskClientConfig, RiskFleet, RiskServerConfig,
    RolloutController, RolloutStep, ShadowConfig, SwapPolicy, VerdictStatus,
};
use std::time::Duration;

const CHAOS_SEED: u64 = 0x5EED;

fn ua(vendor: Vendor, v: u32) -> UserAgent {
    UserAgent::new(vendor, v)
}

fn train_config() -> TrainConfig {
    TrainConfig {
        k: 2,
        n_components: 2,
        min_samples_for_majority: 1,
        ..Default::default()
    }
}

/// v1: Chrome 60 clusters at era A (near 0), Chrome 100 at era B
/// (near 10). Chrome 101 is unknown, so a 101 claim is checked against
/// its nearest known release — Chrome 100's cluster.
fn serving_training() -> TrainingSet {
    let mut set = TrainingSet::new(2);
    for (base, u) in [
        (0.0, ua(Vendor::Chrome, 60)),
        (10.0, ua(Vendor::Chrome, 100)),
    ] {
        for j in 0..40 {
            set.push(vec![base + (j % 2) as f64 * 0.1, base], u)
                .unwrap();
        }
    }
    set
}

fn serving_model() -> TrainedModel {
    let fs = FeatureSet::table8().subset(&[0, 1]);
    TrainedModel::fit(fs, &serving_training(), train_config()).unwrap()
}

/// The retrain window: the v1 eras plus Chrome 101 shipping era-A
/// features. Under v1 a 101 claim with era-A values is *flagged*
/// (expected in Chrome 100's cluster); a candidate trained on this
/// window knows 101 belongs at era A and answers *unflagged* — a
/// behaviourally different model, so any pre-promotion leak onto the
/// serve path is observable in the verdict stream.
fn drift_window() -> TrainingSet {
    let mut fresh = serving_training();
    for j in 0..80 {
        fresh
            .push(
                vec![0.3 + (j % 3) as f64 * 0.1, 0.3],
                ua(Vendor::Chrome, 101),
            )
            .unwrap();
    }
    fresh
}

fn orch_config(shadow: ShadowConfig, swap: SwapPolicy) -> OrchestratorConfig {
    OrchestratorConfig {
        train: train_config(),
        min_accuracy: 0.9,
        keep_versions: 4,
        swap,
        refit_epochs: 4,
        shadow: Some(shadow),
    }
}

fn temp_registry(tag: &str) -> ModelRegistry {
    let dir = std::env::temp_dir().join(format!(
        "polygraph-shadow-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    ModelRegistry::open(&dir).unwrap()
}

/// An honest session both v1 and the candidate agree on: era-A values
/// under a Chrome 60 claim (even `j`) or era-B values under Chrome 100
/// (odd `j`). The verdict cache keys on (user-agent, values), so each
/// parity walks a 5×5 grid — 25 distinct value pairs, all safely inside
/// the claimed era's cluster — keeping every frame with `j/2 < 25` a
/// genuine cache miss (and therefore shadow-compared).
fn honest_submission(j: u64) -> Submission {
    let i = j / 2;
    let (u, a, b) = if j.is_multiple_of(2) {
        (ua(Vendor::Chrome, 60), (i % 5) as u32, ((i / 5) % 5) as u32)
    } else {
        (
            ua(Vendor::Chrome, 100),
            8 + (i % 5) as u32,
            8 + ((i / 5) % 5) as u32,
        )
    };
    let mut session_id = [0u8; 16];
    session_id[..8].copy_from_slice(&j.to_le_bytes());
    Submission {
        session_id,
        user_agent: u.to_ua_string(),
        values: vec![a, b],
    }
}

/// A Chrome 101 claim with era-A values: flagged under v1, unflagged
/// under the drift-window candidate. Same 5×5 grid as
/// [`honest_submission`] so probes with `j < 25` are distinct cache
/// keys (the claimed user-agent separates them from honest era-A
/// frames).
fn probe_submission(j: u64) -> Submission {
    let mut session_id = [1u8; 16];
    session_id[..8].copy_from_slice(&j.to_le_bytes());
    Submission {
        session_id,
        user_agent: ua(Vendor::Chrome, 101).to_ua_string(),
        values: vec![(j % 5) as u32, ((j / 5) % 5) as u32],
    }
}

/// Tentpole invariant, both connection backends: while a candidate
/// shadows, the live verdict stream is exactly v1's, the cache epoch
/// never moves, the registry stays empty, and the versioned-publish tag
/// stays 0. Only promotion changes any of it — all at once.
#[test]
fn shadow_candidate_never_serves_before_promotion() {
    for_each_backend(|config, backend| {
        let config = RiskServerConfig {
            cache_shards: 2,
            cache_capacity: 256,
            ..config
        };
        let server =
            start_risk_server_with("127.0.0.1:0", Detector::new(serving_model()), config).unwrap();
        let registry = temp_registry(&format!("never-serves-{backend}"));
        let mut orch = Orchestrator::new(
            &server,
            registry,
            orch_config(
                ShadowConfig {
                    max_divergence: 0.2,
                    required_checkpoints: 2,
                    min_compared: 10,
                },
                SwapPolicy::PublishAndSwap,
            ),
        );
        let epoch0 = server.cache_epoch().expect("cache enabled");

        // Drift: the candidate attaches instead of publishing.
        let outcome = orch
            .checkpoint(&drift_window(), &[ua(Vendor::Chrome, 101)])
            .unwrap();
        assert!(
            matches!(outcome, RetrainOutcome::ShadowStarted { .. }),
            "[{backend}] got {outcome:?}"
        );
        assert!(server.shadow_attached());

        let mut client = RiskClient::connect(server.local_addr()).unwrap();
        let assert_serving_is_v1 = |client: &mut RiskClient, js: std::ops::Range<u64>| {
            for j in js {
                let v = client.assess_submission(&honest_submission(j)).unwrap();
                assert_eq!(v.status, VerdictStatus::Assessed);
                assert!(!v.flagged, "[{backend}] honest frame {j} flagged");
            }
        };

        // Live traffic while shadowing: honest frames agree between the
        // models; the 101 probes are where they differ — and the wire
        // answer must be v1's (flagged) every single time.
        assert_serving_is_v1(&mut client, 0..30);
        for j in 0..3u64 {
            let v = client.assess_submission(&probe_submission(j)).unwrap();
            assert_eq!(v.status, VerdictStatus::Assessed);
            assert!(
                v.flagged,
                "[{backend}] probe {j} answered by the shadow candidate pre-promotion"
            );
        }
        let (compared, diverged) = server.shadow_counts().expect("shadow attached");
        assert_eq!(compared, 33, "[{backend}] every miss is double-scored");
        assert_eq!(diverged, 3, "[{backend}] exactly the probes diverge");
        assert_eq!(
            server.cache_epoch(),
            Some(epoch0),
            "[{backend}] epoch moved"
        );
        assert_eq!(server.active_model_version(), 0);
        assert_eq!(orch.registry().versions().unwrap(), Vec::<u64>::new());
        assert_eq!(server.stats().swaps, 0);

        // Divergence 3/33 is under the 0.2 gate: first clean checkpoint.
        let outcome = orch.checkpoint(&drift_window(), &[]).unwrap();
        assert!(
            matches!(
                outcome,
                RetrainOutcome::ShadowPending {
                    clean_checkpoints: 1,
                    ..
                }
            ),
            "[{backend}] got {outcome:?}"
        );
        assert_serving_is_v1(&mut client, 30..50);

        // Second clean checkpoint: promoted — registry, version tag,
        // cache epoch and the serve path all flip together.
        let outcome = orch.checkpoint(&drift_window(), &[]).unwrap();
        assert!(
            matches!(
                outcome,
                RetrainOutcome::ShadowPromoted {
                    version: 1,
                    checkpoints: 2,
                }
            ),
            "[{backend}] got {outcome:?}"
        );
        assert!(!server.shadow_attached());
        assert_eq!(orch.registry().versions().unwrap(), vec![1]);
        assert_eq!(server.active_model_version(), 1);
        assert_eq!(server.stats().swaps, 1);
        assert_eq!(
            server.cache_epoch(),
            Some(epoch0 + 1),
            "[{backend}] promotion must invalidate cached v1 verdicts"
        );
        for j in 200..203u64 {
            let v = client.assess_submission(&probe_submission(j)).unwrap();
            assert!(
                !v.flagged,
                "[{backend}] probe {j} still on v1 after promotion"
            );
        }
        drop(client);
        server.shutdown();
    });
}

/// A candidate that disagrees with the serving model on live traffic is
/// discarded: no publish, no swap, no epoch bump — and the serve path
/// keeps answering with v1 afterwards.
#[test]
fn divergent_candidate_is_rejected_without_a_publish() {
    let config = RiskServerConfig {
        cache_shards: 2,
        cache_capacity: 256,
        ..Default::default()
    };
    let server =
        start_risk_server_with("127.0.0.1:0", Detector::new(serving_model()), config).unwrap();
    let registry = temp_registry("divergent");
    let mut orch = Orchestrator::new(
        &server,
        registry,
        orch_config(
            ShadowConfig {
                max_divergence: 0.1,
                required_checkpoints: 1,
                min_compared: 5,
            },
            SwapPolicy::PublishAndSwap,
        ),
    );
    let epoch0 = server.cache_epoch().expect("cache enabled");
    let outcome = orch
        .checkpoint(&drift_window(), &[ua(Vendor::Chrome, 101)])
        .unwrap();
    assert!(matches!(outcome, RetrainOutcome::ShadowStarted { .. }));

    // The live window is all probes: the candidate disagrees on every
    // frame, and every frame is still answered by v1.
    let mut client = RiskClient::connect(server.local_addr()).unwrap();
    for j in 0..20u64 {
        let v = client.assess_submission(&probe_submission(j)).unwrap();
        assert_eq!(v.status, VerdictStatus::Assessed);
        assert!(v.flagged, "probe {j} leaked a candidate verdict");
    }

    let outcome = orch.checkpoint(&drift_window(), &[]).unwrap();
    match outcome {
        RetrainOutcome::ShadowRejected { compared, diverged } => {
            assert_eq!(compared, 20);
            assert_eq!(diverged, 20);
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    assert!(!server.shadow_attached());
    assert!(!orch.shadow_in_flight());
    assert_eq!(
        orch.registry().versions().unwrap(),
        Vec::<u64>::new(),
        "a rejected candidate must leave no registry trace"
    );
    assert_eq!(server.stats().swaps, 0);
    assert_eq!(server.active_model_version(), 0);
    assert_eq!(server.cache_epoch(), Some(epoch0));
    assert_eq!(
        server
            .registry()
            .counter(orch_metrics::SHADOW_REJECTED)
            .get(),
        1
    );
    // v1 still serves.
    let v = client.assess_submission(&probe_submission(100)).unwrap();
    assert!(v.flagged);
    drop(client);
    server.shutdown();
}

/// Fleet leg: a candidate shadows node 0 under `PublishOnly`, a node is
/// killed mid-shadow (seeded storm keeps flowing over the failover
/// ring, and a successor orchestrator adopts the in-flight candidate —
/// the restart-recovery path), promotion publishes a version that *no*
/// node serves yet, and only the staged rollout gate distributes it to
/// the survivors.
#[test]
fn promoted_candidate_rolls_out_through_the_fleet_gate() {
    const NODES: usize = 3;
    const VICTIM: usize = 2;
    let registry_dir =
        std::env::temp_dir().join(format!("polygraph-shadow-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&registry_dir);
    let mut fleet = RiskFleet::start(
        &serving_model(),
        FleetConfig {
            nodes: NODES,
            ..Default::default()
        },
    )
    .unwrap();
    let client_config = RiskClientConfig {
        request_timeout: Duration::from_millis(500),
        max_retries: 0, // fail over along the ring instead of retrying in place
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(10),
        retry_seed: CHAOS_SEED,
    };
    let shadow_gate = ShadowConfig {
        max_divergence: 0.2,
        required_checkpoints: 2,
        min_compared: 1,
    };

    // Phase 1: drift on node 0 attaches the candidate; storm part one.
    let candidate = {
        let node0 = fleet.node(0).unwrap();
        let mut orch = Orchestrator::new(
            node0,
            ModelRegistry::open(&registry_dir).unwrap(),
            orch_config(shadow_gate, SwapPolicy::PublishOnly),
        );
        let outcome = orch
            .checkpoint(&drift_window(), &[ua(Vendor::Chrome, 101)])
            .unwrap();
        assert!(matches!(outcome, RetrainOutcome::ShadowStarted { .. }));
        assert!(node0.shadow_attached());
        let mut client = FleetClient::connect(&fleet, client_config.clone());
        for j in 0..30u64 {
            let v = client.assess_submission(&honest_submission(j)).unwrap();
            assert_eq!(v.status, VerdictStatus::Assessed, "frame {j}");
            assert!(!v.flagged, "frame {j}");
        }
        orch.shadow_candidate().expect("in flight").clone()
    };

    // Mid-shadow chaos: kill a node. The candidate is still attached on
    // node 0; a successor orchestrator adopts it and the gate restarts.
    assert!(fleet.kill_node(VICTIM));
    assert!(fleet.node(0).unwrap().shadow_attached());

    let node0 = fleet.node(0).unwrap();
    let mut orch = Orchestrator::new(
        node0,
        ModelRegistry::open(&registry_dir).unwrap(),
        orch_config(shadow_gate, SwapPolicy::PublishOnly),
    );
    orch.adopt_shadow(candidate);

    // Phase 2: the seeded storm keeps flowing across the dead node's
    // failover ring while the candidate earns its clean checkpoints.
    let mut client = FleetClient::connect(&fleet, client_config);
    let mut storm = |js: std::ops::Range<u64>| {
        for j in js {
            let v = client
                .assess_submission(&honest_submission(j))
                .unwrap_or_else(|e| panic!("frame {j} failed fleet-wide: {e}"));
            assert_eq!(
                v.status,
                VerdictStatus::Assessed,
                "garbage verdict at frame {j} (seed {CHAOS_SEED:#x})"
            );
            assert!(!v.flagged, "wrong flag at frame {j}");
        }
    };
    storm(100..160);
    let outcome = orch.checkpoint(&drift_window(), &[]).unwrap();
    assert!(
        matches!(
            outcome,
            RetrainOutcome::ShadowPending {
                clean_checkpoints: 1,
                ..
            }
        ),
        "got {outcome:?}"
    );
    storm(200..260);
    let outcome = orch.checkpoint(&drift_window(), &[]).unwrap();
    let version = match outcome {
        RetrainOutcome::ShadowPromoted {
            version,
            checkpoints,
        } => {
            assert_eq!(checkpoints, 2);
            version
        }
        other => panic!("expected promotion, got {other:?}"),
    };
    assert_eq!(orch.registry().versions().unwrap(), vec![version]);

    // Promoted under `PublishOnly`: the version exists, but *no* live
    // node serves it until the rollout gate says so.
    for node in [0usize, 1] {
        assert_eq!(fleet.node(node).unwrap().active_model_version(), 0);
        let mut probe_client = RiskClient::connect(fleet.addr(node).unwrap()).unwrap();
        let v = probe_client
            .assess_submission(&probe_submission(500))
            .unwrap();
        assert!(v.flagged, "node {node} serves the candidate pre-rollout");
    }

    // The fleet gate distributes it: the divergence sample is a session
    // both models agree on, so a zero budget still promotes.
    let sample = vec![(vec![0.0, 0.0], ua(Vendor::Chrome, 60))];
    let mut rollout =
        RolloutController::new(&ModelRegistry::open(&registry_dir).unwrap(), sample, 0.0).unwrap();
    loop {
        match rollout.advance(&fleet) {
            RolloutStep::Complete => break,
            RolloutStep::Promoted { .. } => {}
            RolloutStep::Blocked { .. } => panic!("agreeing sample blocked the rollout"),
        }
    }
    for node in [0usize, 1] {
        assert_eq!(
            fleet.node(node).unwrap().active_model_version(),
            version,
            "live node {node} missed the rollout"
        );
        let mut probe_client = RiskClient::connect(fleet.addr(node).unwrap()).unwrap();
        let v = probe_client
            .assess_submission(&probe_submission(600))
            .unwrap();
        assert!(!v.flagged, "node {node} still on v1 after the rollout");
    }
    drop(client);
    fleet.shutdown();
}
