//! Drift monitor: keep a trained model honest as new browser releases
//! ship, and learn when to retrain (§6.6/§7.3).
//!
//! ```sh
//! cargo run --release --example drift_monitor
//! ```

use browser_polygraph::core::{
    DriftDecision, DriftDetector, TrainConfig, TrainedModel, TrainingSet,
};
use browser_polygraph::engine::{UserAgent, Vendor};
use browser_polygraph::fingerprint::FeatureSet;
use browser_polygraph::traffic::{generate, TrafficConfig};

fn main() {
    // Train on the spring window.
    let features = FeatureSet::table8();
    let data = generate(
        &features,
        &TrafficConfig::paper_training().with_sessions(20_000),
    );
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let model =
        TrainedModel::fit(features.clone(), &training, TrainConfig::default()).expect("train");
    println!(
        "spring model trained ({:.2}% accuracy); monitoring the autumn window ...\n",
        model.train_accuracy() * 100.0
    );

    // Fresh traffic from the autumn window (new releases ship monthly).
    let autumn = generate(
        &features,
        &TrafficConfig::drift_window().with_sessions(30_000),
    );
    let (rows, uas) = autumn.rows_and_user_agents();
    let batch = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let monitor = DriftDetector::new(&model);

    // Checkpoints run a few days after each release wave.
    for (date, version) in [
        ("07/25", 115u32),
        ("08/25", 116),
        ("09/25", 117),
        ("10/23", 118),
        ("10/31", 119),
    ] {
        let releases = [
            UserAgent::new(Vendor::Chrome, version),
            UserAgent::new(Vendor::Firefox, version),
            UserAgent::new(Vendor::Edge, version),
        ];
        let (observations, decision) = monitor
            .checkpoint(&batch, &releases)
            .expect("releases observed");
        println!("checkpoint {date}:");
        for obs in &observations {
            println!(
                "  {:<12} cluster {} (expected {:?}), accuracy {:.2}%{}",
                obs.release.label(),
                obs.cluster,
                obs.expected_cluster,
                obs.accuracy * 100.0,
                if obs.triggers_retraining() {
                    "  <-- shifted"
                } else {
                    ""
                },
            );
        }
        match decision {
            DriftDecision::Stable => println!("  -> stable, no retraining\n"),
            DriftDecision::Retrain { triggers } => {
                println!(
                    "  -> RETRAIN: {} shifted; refitting on fresh data ...",
                    triggers
                        .iter()
                        .map(|u| u.label())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                // The §6.6 response: retrain on the recent window.
                let new_model = TrainedModel::fit(features.clone(), &batch, TrainConfig::default())
                    .expect("retrain");
                println!(
                    "  -> retrained model: {:.2}% accuracy over the autumn window\n",
                    new_model.train_accuracy() * 100.0
                );
                return;
            }
        }
    }
    println!("no drift detected across the window (unexpected for late 2023)");
}
