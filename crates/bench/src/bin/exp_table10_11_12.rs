//! Tables 10, 11 and 12 (Appendix-4): sensitivity of model accuracy to
//! the number of clusters, PCA components, and features.

use polygraph_bench::{header, parse_options};
use polygraph_core::sweeps::{sweep_clusters, sweep_features, sweep_pca, table12_steps};
use polygraph_core::{TrainConfig, TrainingSet};
use traffic::{generate, TrafficConfig};

fn main() {
    let opts = parse_options();
    let fs = fingerprint::FeatureSet::table8();
    let traffic_cfg = TrafficConfig::paper_training()
        .with_sessions(opts.sessions)
        .with_seed(opts.seed);
    println!("generating {} sessions ...", opts.sessions);
    let data = generate(&fs, &traffic_cfg);
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let base = TrainConfig {
        n_init: 2,
        ..TrainConfig::default()
    };

    header("Table 10: accuracy vs number of clusters (28 features, 7 PCA components)");
    let paper10 = [
        (5, "99.88%"),
        (7, "99.69%"),
        (9, "99.58%"),
        (11, "99.60%"),
        (13, "99.40%"),
        (15, "99.31%"),
        (17, "99.29%"),
        (19, "99.26%"),
    ];
    let ks: Vec<usize> = paper10.iter().map(|(k, _)| *k).collect();
    let points = sweep_clusters(&fs, &training, &ks, base).expect("sweep");
    for (p, (_, paper)) in points.iter().zip(paper10) {
        println!(
            "  k={:>2}   paper: {paper:>7}   measured: {:>7.2}%",
            p.value,
            p.accuracy * 100.0
        );
    }

    header("Table 11: accuracy vs number of PCA components (28 features, k = 11)");
    let paper11 = [
        (6, "99.54%"),
        (7, "99.60%"),
        (8, "99.46%"),
        (9, "99.46%"),
        (10, "99.46%"),
    ];
    let comps: Vec<usize> = paper11.iter().map(|(c, _)| *c).collect();
    let points = sweep_pca(&fs, &training, &comps, base).expect("sweep");
    for (p, (_, paper)) in points.iter().zip(paper11) {
        println!(
            "  PCA={:>2}  paper: {paper:>7}   measured: {:>7.2}%",
            p.value,
            p.accuracy * 100.0
        );
    }

    header("Table 12: accuracy vs number of features (paper's addition schedule)");
    let paper12 = [
        (28usize, 11usize, "99.60%"),
        (32, 11, "99.52%"),
        (36, 12, "99.41%"),
        (42, 14, "99.41%"),
    ];
    // Re-extract the traffic under each widened feature set, reusing the
    // same seed so the underlying sessions are identical.
    let steps = table12_steps();
    let result = sweep_features(
        &fs,
        &training,
        &steps,
        |set| {
            let regenerated = generate(set, &traffic_cfg);
            let (rows, uas) = regenerated.rows_and_user_agents();
            TrainingSet::from_rows(rows, uas)
        },
        base,
    )
    .expect("sweep");
    for (step, (nf, k, paper)) in result.iter().zip(paper12) {
        println!(
            "  features={:>2} k={:>2}   paper: {paper:>7} (k={k})   measured: {:>7.2}%",
            step.n_features,
            step.k,
            step.accuracy * 100.0
        );
        if !step.added.is_empty() {
            for name in &step.added {
                println!("      + {name}");
            }
        }
        let _ = nf;
    }
}
