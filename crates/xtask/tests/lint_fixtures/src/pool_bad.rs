//! Pool-twin fixture: `fit_with_pool` has no serial twin.

pub fn fit_with_pool(x: u32) -> u32 {
    x
}
