//! Benchmarks for the deployed path: verdict encoding and a full TCP
//! round-trip through the risk service (probe → wire → assess → verdict).
//! This is the latency a login flow actually pays, the number that must
//! sit inside FinOrg's 100 ms budget (§3) — measured here in microseconds.

use browser_engine::{BrowserInstance, UserAgent, Vendor};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fingerprint::FeatureSet;
use polygraph_core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use polygraph_service::proto::{Verdict, VerdictStatus};
use polygraph_service::{start_risk_server, RiskClient};
use traffic::{generate, TrafficConfig};

fn trained_detector() -> Detector {
    let fs = FeatureSet::table8();
    let data = generate(&fs, &TrafficConfig::paper_training().with_sessions(8_000));
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    Detector::new(TrainedModel::fit(fs, &training, TrainConfig::default()).expect("train"))
}

fn bench_verdict_wire(c: &mut Criterion) {
    let v = Verdict {
        status: VerdictStatus::Assessed,
        flagged: true,
        risk_factor: 11,
        predicted_cluster: 4,
        expected_cluster: Some(2),
    };
    let encoded = v.encode();
    c.bench_function("verdict encode", |b| {
        b.iter(|| black_box(black_box(&v).encode()))
    });
    c.bench_function("verdict decode", |b| {
        b.iter(|| black_box(Verdict::decode(black_box(&encoded)).unwrap()))
    });
}

fn bench_service_round_trip(c: &mut Criterion) {
    let server = start_risk_server("127.0.0.1:0", trained_detector()).expect("bind");
    let mut client = RiskClient::connect(server.local_addr()).expect("connect");
    let fs = FeatureSet::table8();
    let browser = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112));

    c.bench_function("risk service round-trip (probe+wire+TCP+assess)", |b| {
        b.iter(|| black_box(client.assess_browser(&fs, &browser).unwrap()))
    });
    drop(client);
    server.shutdown();
}

/// Pipelined burst vs. the one-at-a-time round trip above: the server
/// drains queued frames in batches sharing one detector read guard, so
/// per-frame cost in a burst should undercut the serial round trip.
fn bench_pipelined_burst(c: &mut Criterion) {
    use fingerprint::{encode_submission, Submission};
    use polygraph_service::proto::VERDICT_LEN;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let server = start_risk_server("127.0.0.1:0", trained_detector()).expect("bind");
    let fs = FeatureSet::table8();
    let browser = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112));
    let sub = Submission {
        session_id: [7u8; 16],
        user_agent: browser.claimed_user_agent().to_ua_string(),
        values: fs.extract(&browser).values().to_vec(),
    };
    let frame = encode_submission(&sub).expect("encode");
    const BURST: usize = 64;
    let mut wire = Vec::new();
    for _ in 0..BURST {
        wire.extend_from_slice(&(frame.len() as u16).to_le_bytes());
        wire.extend_from_slice(&frame);
    }

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut verdicts = vec![0u8; BURST * VERDICT_LEN];
    c.bench_function("risk service pipelined burst of 64 (batch drain)", |b| {
        b.iter(|| {
            stream.write_all(&wire).expect("write");
            stream.read_exact(&mut verdicts).expect("read");
            black_box(&verdicts);
        })
    });
    drop(stream);
    server.shutdown();
}

criterion_group!(
    benches,
    bench_verdict_wire,
    bench_service_round_trip,
    bench_pipelined_burst
);
criterion_main!(benches);
