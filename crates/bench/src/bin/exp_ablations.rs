//! Ablations of the design choices `DESIGN.md` calls out.
//!
//! Each variant retrains on the same traffic window and reports what
//! breaks, so every deviation from the obvious pipeline is justified by a
//! measurement:
//!
//! 1. **Selective scaling** (§6.4.1): scale the binary features too and
//!    rare bits become dominant axes — the sparse old browsers splinter
//!    out of their Table 3 groups.
//! 2. **Lab alignment** (§6.4.3): without it, rare browsers whose sessions
//!    all fall to the outlier filter (Edge 17-19) turn into permanent
//!    vendor-mismatch false positives.
//! 3. **Outlier removal** (§6.4.1): without it, the anomalous rows sit in
//!    the training set and dent accuracy slightly.
//! 4. **Time-based features** (Table 8): drop the 6 bits and cross-vendor
//!    lies *within* the merged old-era cluster go dark.
//! 5. **Coarse k = 3** (Appendix-4): fewer clusters give the attacker
//!    room — category-2 recall collapses.

use fraud_browsers::{catalog::product_by_name, ProfilePlan};
use polygraph_bench::{header, parse_options, pct};
use polygraph_core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use traffic::{generate, GroundTruth, TrafficConfig, TrafficDataset};

struct Outcome {
    accuracy: f64,
    populated_clusters: usize,
    fraud_recall: f64,
    benign_flags: usize,
    benign_max_risk_flags: usize,
    table5_recall: f64,
    /// Does the model keep the paper's cross-vendor merges (Table 3's
    /// clusters 2 and 6)?
    merges_intact: bool,
}

fn evaluate(
    feature_set: &fingerprint::FeatureSet,
    training: &TrainingSet,
    data: &TrafficDataset,
    columns: Option<&[usize]>,
    config: TrainConfig,
) -> Outcome {
    let model = TrainedModel::fit(feature_set.clone(), training, config).expect("training");
    let accuracy = model.train_accuracy();
    let populated_clusters = model.cluster_table().rows().len();
    // The paper's signature cross-vendor rows: old Chrome with Quantum
    // Firefox (cluster 2) and EdgeHTML with pre-Quantum Firefox (cluster 6).
    let t = model.cluster_table();
    let ua = |vendor, v| browser_engine::UserAgent::new(vendor, v);
    use browser_engine::Vendor;
    let merge2 = t.cluster_of(ua(Vendor::Chrome, 63)).is_some()
        && t.cluster_of(ua(Vendor::Chrome, 63)) == t.cluster_of(ua(Vendor::Firefox, 78));
    let merge6 = t.cluster_of(ua(Vendor::Edge, 18)).is_some()
        && t.cluster_of(ua(Vendor::Edge, 18)) == t.cluster_of(ua(Vendor::Firefox, 47));
    let merges_intact = merge2 && merge6;
    let detector = Detector::new(model);

    let mut fraud_flagged = 0usize;
    let mut fraud_total = 0usize;
    let mut benign_flags = 0usize;
    let mut benign_max_risk_flags = 0usize;
    for s in &data.sessions {
        let row: Vec<f64> = match columns {
            Some(cols) => cols.iter().map(|&c| s.values[c] as f64).collect(),
            None => s.row(),
        };
        let a = detector.assess(&row, s.claimed).expect("assess");
        if s.truth.is_detectable_fraud() {
            fraud_total += 1;
            fraud_flagged += a.flagged as usize;
        } else if matches!(s.truth, GroundTruth::Legitimate { .. }) && a.flagged {
            benign_flags += 1;
            if a.risk_factor >= polygraph_core::MAX_RISK {
                benign_max_risk_flags += 1;
            }
        }
    }

    // Table 5-style product recall over the §7.2 plans.
    let mut plan_flagged = 0usize;
    let mut plan_total = 0usize;
    for name in ["GoLogin", "Incogniton", "Octo Browser", "Sphere"] {
        let plan = ProfilePlan::for_product(&product_by_name(name).expect("catalogued"));
        for p in &plan.profiles {
            let b = p.instantiate();
            let values: Vec<f64> = match columns {
                Some(cols) => {
                    let full = feature_set_full().extract(&b);
                    cols.iter().map(|&c| full.values()[c] as f64).collect()
                }
                None => feature_set_full().extract(&b).as_f64(),
            };
            let a = detector
                .assess(&values, b.claimed_user_agent())
                .expect("assess");
            plan_total += 1;
            plan_flagged += a.flagged as usize;
        }
    }

    Outcome {
        accuracy,
        populated_clusters,
        fraud_recall: fraud_flagged as f64 / fraud_total.max(1) as f64,
        benign_flags,
        benign_max_risk_flags,
        table5_recall: plan_flagged as f64 / plan_total.max(1) as f64,
        merges_intact,
    }
}

fn feature_set_full() -> fingerprint::FeatureSet {
    fingerprint::FeatureSet::table8()
}

fn print(label: &str, o: &Outcome) {
    println!(
        "  {label:<38} acc {:>7}  clusters {:>2}  table3-merges {:>3}  \
         traffic-recall {:>7}  table5-recall {:>7}  benign flags {:>4} (rf=20: {:>3})",
        pct(o.accuracy),
        o.populated_clusters,
        if o.merges_intact { "yes" } else { "NO" },
        pct(o.fraud_recall),
        pct(o.table5_recall),
        o.benign_flags,
        o.benign_max_risk_flags,
    );
}

fn main() {
    let opts = parse_options();
    let fs = feature_set_full();
    let window = TrafficConfig::paper_training()
        .with_sessions(opts.sessions)
        .with_seed(opts.seed);
    println!("generating {} sessions ...", opts.sessions);
    let data = generate(&fs, &window);
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    // Production settings throughout: with fewer k-means restarts the
    // spare centroids (k = 11 vs ~9 natural groups) can land inside the
    // biggest release's extension sub-structure and manufacture benign
    // empty-cluster flags.
    let base = TrainConfig::default();

    header("ablations (each row = the full pipeline with one choice undone)");
    print(
        "baseline (paper configuration)",
        &evaluate(&fs, &training, &data, None, base),
    );

    print(
        "scale time-based bits too",
        &evaluate(
            &fs,
            &training,
            &data,
            None,
            TrainConfig {
                scale_time_based: true,
                ..base
            },
        ),
    );

    print(
        "no lab alignment of sparse UAs",
        &evaluate(
            &fs,
            &training,
            &data,
            None,
            TrainConfig {
                lab_alignment: false,
                ..base
            },
        ),
    );

    print(
        "no Isolation-Forest outlier removal",
        &evaluate(
            &fs,
            &training,
            &data,
            None,
            TrainConfig {
                contamination: 0.0,
                ..base
            },
        ),
    );

    // Deviation-only: drop the 6 time-based bits.
    let dev_cols: Vec<usize> = fs.indices_of_kind(fingerprint::FeatureKind::DeviationBased);
    let dev_set = fs.subset(&dev_cols);
    let dev_training = training.select_columns(&dev_cols).expect("projection");
    print(
        "22 deviation features only (no bits)",
        &evaluate(&dev_set, &dev_training, &data, Some(&dev_cols), base),
    );

    print(
        "coarse clustering (k = 3)",
        &evaluate(&fs, &training, &data, None, TrainConfig { k: 3, ..base }),
    );

    println!();
    println!(
        "reading: coarsening k collapses fraud recall (the Appendix-4 argument for\n\
         k=11). Removing lab alignment turns outlier-filtered rare browsers into\n\
         permanent rf=20 false positives (the paper's Edge 17 / Chrome 81 problem)\n\
         at window sizes where the Isolation Forest eats whole rare strata. The\n\
         remaining ablations (scaling the bits, dropping the bits, skipping outlier\n\
         removal) are largely absorbed by the satellite fallback in the detector\n\
         (Detector::assess verifies claims against the nearest *populated* cluster),\n\
         which is itself the load-bearing robustness choice: without it, spare\n\
         centroids over extension sub-structure manufacture hundreds of benign\n\
         max-risk flags."
    );
}
