//! Isolation Forest outlier detection (Liu et al., ICDM 2008).
//!
//! The paper removes a tiny fraction of anomalous training rows before
//! fitting PCA + k-means (§6.4.1): 172 of ~205k rows, none of which matched
//! a legitimate browser's feature values. This is the standard isolation
//! forest: an ensemble of random isolation trees; anomalies are points with
//! short average path lengths.

use crate::error::MlError;
use crate::matrix::Matrix;
use crate::pool::{ThreadPool, ROW_CHUNK};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`IsolationForest::fit`].
#[derive(Debug, Clone, Copy)]
pub struct IsolationForestConfig {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Sub-sample size per tree (clamped to the dataset size).
    pub sample_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IsolationForestConfig {
    fn default() -> Self {
        // 100 trees x 256 samples are the constants from the original paper.
        Self {
            n_trees: 100,
            sample_size: 256,
            seed: 0x1F05E57,
        }
    }
}

/// A fitted isolation forest.
#[derive(Debug, Clone)]
pub struct IsolationForest {
    trees: Vec<Tree>,
    /// Average path length normaliser `c(sample_size)`.
    c_norm: f64,
}

#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    /// Internal split: feature index, split value, left child, right child.
    Split {
        feature: usize,
        value: f64,
        left: usize,
        right: usize,
    },
    /// Leaf holding `size` training points at depth `depth`.
    Leaf { size: usize, depth: usize },
}

impl IsolationForest {
    /// Fits an isolation forest on the rows of `x`.
    pub fn fit(x: &Matrix, config: IsolationForestConfig) -> Result<Self, MlError> {
        Self::fit_with_pool(x, config, &ThreadPool::serial())
    }

    /// [`IsolationForest::fit`] on a thread pool.
    ///
    /// Each tree draws from its own ChaCha stream (same key, stream id =
    /// tree index), so trees are independent of execution order and the
    /// parallel forest is bit-identical to the serial one.
    pub fn fit_with_pool(
        x: &Matrix,
        config: IsolationForestConfig,
        pool: &ThreadPool,
    ) -> Result<Self, MlError> {
        if config.n_trees == 0 {
            return Err(MlError::InvalidParameter {
                name: "n_trees",
                reason: "must be at least 1".into(),
            });
        }
        if config.sample_size < 2 {
            return Err(MlError::InvalidParameter {
                name: "sample_size",
                reason: "must be at least 2".into(),
            });
        }
        let n = x.rows();
        let sample = config.sample_size.min(n);
        let height_limit = (sample as f64).log2().ceil() as usize;

        let trees = pool.run(config.n_trees, |t| {
            let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
            rng.set_stream(t as u64);
            let indices: Vec<usize> = (0..sample).map(|_| rng.gen_range(0..n)).collect();
            Tree::build(x, indices, height_limit, &mut rng)
        });

        Ok(Self {
            trees,
            c_norm: c_factor(sample),
        })
    }

    /// Anomaly score in `(0, 1)` for one sample; higher is more anomalous.
    ///
    /// Scores near 1 indicate isolation after very few splits; scores well
    /// below 0.5 indicate normal points.
    pub fn score_row(&self, row: &[f64]) -> f64 {
        let avg_path: f64 =
            self.trees.iter().map(|t| t.path_length(row)).sum::<f64>() / self.trees.len() as f64;
        2f64.powf(-avg_path / self.c_norm)
    }

    /// Anomaly scores for every row of `x`.
    pub fn score(&self, x: &Matrix) -> Vec<f64> {
        x.iter_rows().map(|r| self.score_row(r)).collect()
    }

    /// [`IsolationForest::score`] on a thread pool. Each row's score is
    /// independent, so rows are chunked over fixed [`ROW_CHUNK`] ranges and
    /// the output is bit-identical to the serial scan.
    pub fn score_with_pool(&self, x: &Matrix, pool: &ThreadPool) -> Vec<f64> {
        pool.run_chunks(x.rows(), ROW_CHUNK, |lo, hi| {
            (lo..hi)
                .map(|r| self.score_row(x.row(r)))
                .collect::<Vec<f64>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Returns the indices of the `contamination` fraction of rows with the
    /// highest anomaly scores (at least one row if `contamination > 0`).
    ///
    /// This mirrors the paper's usage: a 0.002-ish contamination removes the
    /// handful of rows that match no legitimate browser.
    pub fn outlier_indices(&self, x: &Matrix, contamination: f64) -> Result<Vec<usize>, MlError> {
        self.outlier_indices_with_pool(x, contamination, &ThreadPool::serial())
    }

    /// [`IsolationForest::outlier_indices`] with the scoring pass run on a
    /// thread pool; the ranking itself is a deterministic sort.
    pub fn outlier_indices_with_pool(
        &self,
        x: &Matrix,
        contamination: f64,
        pool: &ThreadPool,
    ) -> Result<Vec<usize>, MlError> {
        if !(0.0..=0.5).contains(&contamination) {
            return Err(MlError::InvalidParameter {
                name: "contamination",
                reason: format!("must be in [0, 0.5], got {contamination}"),
            });
        }
        if contamination == 0.0 {
            return Ok(Vec::new());
        }
        self.rank_outliers(self.score_with_pool(x, pool), x.rows(), contamination)
    }

    fn rank_outliers(
        &self,
        scores: Vec<f64>,
        rows: usize,
        contamination: f64,
    ) -> Result<Vec<usize>, MlError> {
        let n_out = ((rows as f64 * contamination).round() as usize).max(1);
        let mut idx: Vec<usize> = (0..rows).collect();
        idx.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .expect("scores are finite")
        });
        let mut out = idx[..n_out.min(idx.len())].to_vec();
        out.sort_unstable();
        Ok(out)
    }
}

impl Tree {
    fn build(x: &Matrix, indices: Vec<usize>, height_limit: usize, rng: &mut ChaCha8Rng) -> Self {
        let mut nodes = Vec::new();
        Self::build_node(x, indices, 0, height_limit, rng, &mut nodes);
        Tree { nodes }
    }

    /// Builds the subtree for `indices`, pushes its nodes, and returns the
    /// root index of the subtree.
    fn build_node(
        x: &Matrix,
        indices: Vec<usize>,
        depth: usize,
        height_limit: usize,
        rng: &mut ChaCha8Rng,
        nodes: &mut Vec<Node>,
    ) -> usize {
        if indices.len() <= 1 || depth >= height_limit {
            nodes.push(Node::Leaf {
                size: indices.len(),
                depth,
            });
            return nodes.len() - 1;
        }
        // Pick a random feature with spread; fall back to a leaf if every
        // feature is constant over this partition.
        let cols = x.cols();
        let start = rng.gen_range(0..cols);
        let mut chosen = None;
        for off in 0..cols {
            let f = (start + off) % cols;
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &i in &indices {
                let v = x[(i, f)];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi > lo {
                chosen = Some((f, lo, hi));
                break;
            }
        }
        let Some((feature, lo, hi)) = chosen else {
            nodes.push(Node::Leaf {
                size: indices.len(),
                depth,
            });
            return nodes.len() - 1;
        };
        let value = rng.gen_range(lo..hi);
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x[(i, feature)] < value);

        // Reserve our slot before recursing so children follow the parent.
        let slot = nodes.len();
        nodes.push(Node::Leaf { size: 0, depth }); // placeholder
        let left = Self::build_node(x, left_idx, depth + 1, height_limit, rng, nodes);
        let right = Self::build_node(x, right_idx, depth + 1, height_limit, rng, nodes);
        nodes[slot] = Node::Split {
            feature,
            value,
            left,
            right,
        };
        slot
    }

    fn path_length(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Split {
                    feature,
                    value,
                    left,
                    right,
                } => {
                    node = if row[*feature] < *value {
                        *left
                    } else {
                        *right
                    };
                }
                Node::Leaf { size, depth } => {
                    // Unbuilt subtrees are credited the average path length
                    // of a BST over `size` points.
                    return *depth as f64 + c_factor(*size);
                }
            }
        }
    }
}

/// Average path length of an unsuccessful BST search over `n` points —
/// the normalisation constant from the isolation forest paper.
fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let nf = n as f64;
    // 2 H(n-1) - 2(n-1)/n with H via the Euler-Mascheroni approximation.
    2.0 * ((nf - 1.0).ln() + 0.577_215_664_901_532_9) - 2.0 * (nf - 1.0) / nf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_with_outlier() -> Matrix {
        // Tight cluster around (0, 0) plus one far outlier.
        let mut rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1])
            .collect();
        rows.push(vec![100.0, -100.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn outlier_scores_higher_than_inliers() {
        let x = dataset_with_outlier();
        let f = IsolationForest::fit(
            &x,
            IsolationForestConfig {
                n_trees: 50,
                sample_size: 64,
                seed: 1,
            },
        )
        .unwrap();
        let scores = f.score(&x);
        let outlier_score = scores[100];
        let max_inlier = scores[..100].iter().cloned().fold(0.0, f64::max);
        assert!(
            outlier_score > max_inlier,
            "outlier {outlier_score} must exceed max inlier {max_inlier}"
        );
        assert!(outlier_score > 0.6);
    }

    #[test]
    fn outlier_indices_finds_planted_outlier() {
        let x = dataset_with_outlier();
        let f = IsolationForest::fit(
            &x,
            IsolationForestConfig {
                n_trees: 50,
                sample_size: 64,
                seed: 2,
            },
        )
        .unwrap();
        let idx = f.outlier_indices(&x, 0.01).unwrap();
        assert!(
            idx.contains(&100),
            "planted outlier must be flagged, got {idx:?}"
        );
    }

    #[test]
    fn zero_contamination_returns_empty() {
        let x = dataset_with_outlier();
        let f = IsolationForest::fit(&x, IsolationForestConfig::default()).unwrap();
        assert!(f.outlier_indices(&x, 0.0).unwrap().is_empty());
        assert!(f.outlier_indices(&x, 0.6).is_err());
        assert!(f.outlier_indices(&x, -0.1).is_err());
    }

    #[test]
    fn invalid_config_rejected() {
        let x = dataset_with_outlier();
        assert!(IsolationForest::fit(
            &x,
            IsolationForestConfig {
                n_trees: 0,
                sample_size: 64,
                seed: 0
            }
        )
        .is_err());
        assert!(IsolationForest::fit(
            &x,
            IsolationForestConfig {
                n_trees: 10,
                sample_size: 1,
                seed: 0
            }
        )
        .is_err());
    }

    #[test]
    fn constant_data_scores_uniformly() {
        let x = Matrix::from_rows(&vec![vec![1.0, 1.0]; 50]).unwrap();
        let f = IsolationForest::fit(
            &x,
            IsolationForestConfig {
                n_trees: 20,
                sample_size: 32,
                seed: 3,
            },
        )
        .unwrap();
        let scores = f.score(&x);
        let first = scores[0];
        assert!(scores.iter().all(|&s| (s - first).abs() < 1e-12));
    }

    #[test]
    fn c_factor_monotone() {
        assert_eq!(c_factor(0), 0.0);
        assert_eq!(c_factor(1), 0.0);
        let mut prev = 0.0;
        for n in 2..1000 {
            let c = c_factor(n);
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn pool_fit_and_score_match_serial_bit_for_bit() {
        let x = dataset_with_outlier();
        let cfg = IsolationForestConfig {
            n_trees: 40,
            sample_size: 64,
            seed: 9,
        };
        let serial = IsolationForest::fit(&x, cfg).unwrap();
        let base = serial.score(&x);
        for threads in [2, 8] {
            let pool = ThreadPool::new(threads);
            let par = IsolationForest::fit_with_pool(&x, cfg, &pool).unwrap();
            let scores = par.score_with_pool(&x, &pool);
            assert_eq!(base.len(), scores.len());
            for (s, p) in base.iter().zip(&scores) {
                assert_eq!(s.to_bits(), p.to_bits(), "{threads} threads");
            }
            assert_eq!(
                serial.outlier_indices(&x, 0.01).unwrap(),
                par.outlier_indices_with_pool(&x, 0.01, &pool).unwrap()
            );
        }
    }

    #[test]
    fn scores_bounded_in_unit_interval() {
        let x = dataset_with_outlier();
        let f = IsolationForest::fit(&x, IsolationForestConfig::default()).unwrap();
        for s in f.score(&x) {
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
