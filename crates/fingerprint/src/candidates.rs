//! Candidate fingerprint generation (§6.1).
//!
//! The paper starts from every prototype documented on MDN (1006 names),
//! counts each one's own properties on a catalog of legitimate browser
//! instances, and keeps the 200 count probes with the highest standard
//! deviation across those browsers ("deviation-based" candidates).
//!
//! Most of MDN's interfaces either do not exist in the studied browsers or
//! never change shape; our universe models that directly: the 200
//! Appendix-3 prototypes carry real shape models, and the remaining 806
//! names probe as absent everywhere, so deviation ranking discards them —
//! the same funnel as the paper's.

use crate::probe::Probe;
use crate::vector::FeatureSet;
use browser_engine::protodb::DEVIATION_PROTOTYPES;
use browser_engine::BrowserInstance;

/// Number of prototype names the paper assembled from MDN.
pub const MDN_UNIVERSE_SIZE: usize = 1006;

/// Number of deviation-based candidates kept (§6.1).
pub const DEVIATION_CANDIDATES: usize = 200;

/// The full probe-able universe: the 200 modelled prototypes plus filler
/// names for the rest of MDN's documented interfaces (absent in every
/// studied browser, hence zero deviation).
pub fn mdn_universe() -> Vec<String> {
    let mut names: Vec<String> = DEVIATION_PROTOTYPES.iter().map(|s| s.to_string()).collect();
    let mut i = 0usize;
    while names.len() < MDN_UNIVERSE_SIZE {
        // Plausible-looking interface names that the simulated platform
        // does not implement (think SVGFEDropShadowElement and friends).
        names.push(format!("MDNInterface{i:03}"));
        i += 1;
    }
    names
}

/// Per-probe deviation statistics over a browser catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviationStat {
    /// The probed prototype name.
    pub prototype: String,
    /// Mean count across the catalog.
    pub mean: f64,
    /// Population standard deviation across the catalog.
    pub std_dev: f64,
    /// `std_dev / mean` (0 when the mean is 0) — the "normalized standard
    /// deviation" the paper reports (0.0012–1.3853 for its selection).
    pub normalized_std: f64,
    /// Whether the prototype exists in at least one catalog browser.
    pub observed: bool,
}

/// Computes deviation statistics for each prototype name over a catalog of
/// browser instances.
pub fn deviation_stats(names: &[String], catalog: &[BrowserInstance]) -> Vec<DeviationStat> {
    names
        .iter()
        .map(|name| {
            let values: Vec<f64> = catalog
                .iter()
                .map(|b| b.own_property_count(name) as f64)
                .collect();
            let n = values.len().max(1) as f64;
            let mean = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            let std_dev = var.sqrt();
            DeviationStat {
                prototype: name.clone(),
                mean,
                std_dev,
                normalized_std: if mean > 0.0 { std_dev / mean } else { 0.0 },
                observed: values.iter().any(|&v| v > 0.0),
            }
        })
        .collect()
}

/// Ranks the universe by standard deviation (descending; observed
/// prototypes win ties) and keeps the top `keep` count probes — the
/// paper's deviation-based candidate selection.
pub fn rank_by_deviation(
    names: &[String],
    catalog: &[BrowserInstance],
    keep: usize,
) -> Vec<DeviationStat> {
    let mut stats = deviation_stats(names, catalog);
    stats.sort_by(|a, b| {
        b.std_dev
            .partial_cmp(&a.std_dev)
            .expect("finite std devs")
            .then(b.observed.cmp(&a.observed))
            .then(a.prototype.cmp(&b.prototype))
    });
    stats.truncate(keep);
    stats
}

/// Runs the full candidate-generation stage: rank the MDN universe over
/// `catalog`, keep the top 200 deviation probes, and return them as a
/// feature set (presence candidates are appended separately by
/// [`FeatureSet::candidates_513`]).
pub fn generate_deviation_candidates(catalog: &[BrowserInstance]) -> FeatureSet {
    let universe = mdn_universe();
    let kept = rank_by_deviation(&universe, catalog, DEVIATION_CANDIDATES);
    FeatureSet::new(kept.iter().map(|s| Probe::count(&s.prototype)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::catalog::legitimate_releases;
    use browser_engine::BrowserInstance;

    fn lab_catalog() -> Vec<BrowserInstance> {
        legitimate_releases()
            .into_iter()
            .map(|r| BrowserInstance::genuine(r.ua))
            .collect()
    }

    #[test]
    fn universe_has_1006_unique_names() {
        let names = mdn_universe();
        assert_eq!(names.len(), MDN_UNIVERSE_SIZE);
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), MDN_UNIVERSE_SIZE);
    }

    #[test]
    fn ranking_selects_exactly_the_modelled_prototypes() {
        // The 806 filler interfaces are absent everywhere (zero deviation),
        // so the top 200 must be precisely the Appendix-3 list.
        let catalog = lab_catalog();
        let kept = rank_by_deviation(&mdn_universe(), &catalog, DEVIATION_CANDIDATES);
        assert_eq!(kept.len(), DEVIATION_CANDIDATES);
        for stat in &kept {
            assert!(
                DEVIATION_PROTOTYPES.contains(&stat.prototype.as_str()),
                "{} is not an Appendix-3 prototype",
                stat.prototype
            );
        }
    }

    #[test]
    fn element_ranks_near_the_top() {
        let catalog = lab_catalog();
        let kept = rank_by_deviation(&mdn_universe(), &catalog, 10);
        assert!(
            kept.iter().any(|s| s.prototype == "Element"),
            "Element.prototype has the widest swing across eras; top 10 = {:?}",
            kept.iter()
                .map(|s| s.prototype.as_str())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn normalized_std_in_paper_range() {
        // The paper reports normalized std of selected features spanning
        // 0.0012 to 1.3853; ours should live in a comparable band.
        let catalog = lab_catalog();
        let kept = rank_by_deviation(&mdn_universe(), &catalog, DEVIATION_CANDIDATES);
        for stat in kept.iter().filter(|s| s.observed) {
            assert!(
                stat.normalized_std < 3.0,
                "{}: normalized std {} is implausibly high",
                stat.prototype,
                stat.normalized_std
            );
        }
        let max = kept.iter().map(|s| s.normalized_std).fold(0.0, f64::max);
        assert!(
            max > 0.05,
            "at least one feature must vary meaningfully, max={max}"
        );
    }

    #[test]
    fn filler_interfaces_have_zero_deviation() {
        let catalog = lab_catalog();
        let stats = deviation_stats(&["MDNInterface000".to_string()], &catalog);
        assert_eq!(stats[0].std_dev, 0.0);
        assert!(!stats[0].observed);
    }

    #[test]
    fn generate_returns_200_count_probes() {
        let catalog = lab_catalog();
        let fs = generate_deviation_candidates(&catalog);
        assert_eq!(fs.len(), DEVIATION_CANDIDATES);
    }
}
