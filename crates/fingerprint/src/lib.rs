//! # fingerprint
//!
//! Coarse-grained browser fingerprints: probe definitions, candidate
//! generation, feature vectors, and the compact wire format that keeps a
//! submission under the paper's 1 KB budget (§3).
//!
//! A *coarse-grained fingerprint* is a short vector of small integers:
//! own-property counts of DOM prototypes ("deviation-based" features) and
//! presence bits for specific properties ("time-based" features). By
//! design it carries too little entropy to track a user (§7.4) but enough
//! to expose a browser lying about its user-agent.
//!
//! The flow mirrors the paper:
//!
//! 1. [`candidates::mdn_universe`] — every probe-able MDN prototype
//!    (1006 names, §6.1);
//! 2. [`candidates::rank_by_deviation`] — keep the 200 with the highest
//!    standard deviation across the legitimate-browser catalog;
//! 3. [`FeatureSet::candidates_513`] — those 200 plus the 313
//!    BrowserPrint-style presence probes, the set actually deployed for
//!    real-world collection (§6.2);
//! 4. [`FeatureSet::table8`] — the final 28 features after pre-processing
//!    (§6.3, Table 8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod probe;
pub mod script;
pub mod vector;
pub mod wire;

pub use probe::{FeatureKind, Probe};
pub use script::{collection_script, ScriptOptions};
pub use vector::{FeatureSet, Fingerprint};
pub use wire::{
    decode_submission, decode_submission_view, encode_stats_request, encode_submission,
    is_stats_request, submission_cache_key, Submission, SubmissionView, WireError,
    MAX_SUBMISSION_BYTES,
};
