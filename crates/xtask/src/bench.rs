//! `cargo xtask bench-check` — the performance gate.
//!
//! Compares a freshly emitted `BENCH_serving.json` (written by
//! `bench_serving --smoke`) against the committed
//! `results/bench_baseline.json` and fails when cached serving
//! throughput regressed more than the allowed percentage, when the
//! cached/uncached speedup fell below the floor, or when the bench's
//! own determinism gate (`verdicts_identical`) did not hold — including
//! the reactor backend's wire-conformance gate when the document carries
//! a `reactor` section. The same code runs in CI's `perf-smoke` job and
//! locally, so a red gate always reproduces at a developer's desk.

use serde_json::Value;
use std::path::Path;

/// Thresholds of the gate. The defaults match the CI configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenchCheckConfig {
    /// Maximum tolerated drop of `cached.frames_per_sec` versus the
    /// baseline, in percent. CI runners are noisy; 20% catches real
    /// regressions (a lock on the hit path, a lost shard) while riding
    /// out scheduler jitter.
    pub max_regress_pct: f64,
    /// Minimum `speedup` (cached vs uncached frames/sec on the same
    /// seed and sequence). The committed baseline records ~1.8× (the
    /// miss path got fast enough to narrow the gap); the floor is
    /// deliberately lower so the gate tests "the cache still pays",
    /// not a specific machine's timings.
    pub min_speedup: f64,
    /// Minimum `quant.assess_speedup` (staged vs quantized assess cost
    /// on the identical decoded replay). The assess stage is what the
    /// quantized representation accelerates; end-to-end frames/sec is
    /// Amdahl-diluted by the shared socket/framing/decode path and is
    /// guarded by the regression check instead.
    pub min_quant_assess_speedup: f64,
    /// Per-step slack of the fleet scaling gate, in percent: leg `i+1`
    /// may fall short of leg `i` by at most this much before the
    /// "monotonic" claim is rejected. Absorbs runner jitter on the
    /// individual steps while the overall floor below still demands
    /// real scaling.
    pub fleet_step_slack_pct: f64,
    /// Minimum `fps(last leg) / fps(first leg)` of `BENCH_fleet.json` —
    /// the fleet's aggregate-cache scaling claim. The committed run
    /// records ~1.55x (1 → 4 nodes); the floor is deliberately lower so
    /// the gate tests "adding nodes still pays", not one machine's
    /// timings.
    pub min_fleet_scaling: f64,
    /// Minimum `refit_speedup` of `BENCH_retrain.json` — full-window
    /// fit cost over warm-started streaming refit cost on the same
    /// window. 2.0 is the ISSUE's "a mini-batch checkpoint costs at
    /// most half a full refit" claim; the committed run records far
    /// more, but the gate asserts the operational promise, not one
    /// machine's timings.
    pub min_retrain_speedup: f64,
    /// Minimum live-traffic agreement rate (`1 - diverged/compared`)
    /// of the shadow leg in `BENCH_retrain.json`. A same-distribution
    /// candidate that disagrees with the serving model on more than 2%
    /// of real frames would never survive the orchestrator's own
    /// divergence gate, so the bench must not either.
    pub min_shadow_agreement: f64,
}

impl Default for BenchCheckConfig {
    fn default() -> Self {
        Self {
            max_regress_pct: 20.0,
            min_speedup: 1.5,
            min_quant_assess_speedup: 1.3,
            fleet_step_slack_pct: 5.0,
            min_fleet_scaling: 1.1,
            min_retrain_speedup: 2.0,
            min_shadow_agreement: 0.98,
        }
    }
}

/// The gate's verdict: the rendered report plus pass/fail.
#[derive(Debug, Clone)]
pub struct BenchCheckReport {
    /// Human-readable comparison, one line per checked quantity.
    pub text: String,
    /// Whether every check passed.
    pub pass: bool,
}

/// Runs the gate over two already-loaded JSON documents. Returns `Err`
/// only for malformed documents; a failed threshold is a `pass: false`
/// report, not an error.
pub fn check_documents(
    current: &Value,
    baseline: &Value,
    config: BenchCheckConfig,
) -> Result<BenchCheckReport, String> {
    let schema = current
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("current bench json has no schema tag")?;
    if schema != "polygraph.bench_serving.v1" {
        return Err(format!("unsupported bench schema {schema:?}"));
    }

    let current_fps = fps(current, "current")?;
    let baseline_fps = fps(baseline, "baseline")?;
    let speedup = current
        .get("speedup")
        .and_then(Value::as_f64)
        .ok_or("current bench json has no speedup")?;
    let identical = current
        .get("verdicts_identical")
        .and_then(Value::as_bool)
        .unwrap_or(false);

    let regress_pct = if baseline_fps > 0.0 {
        (baseline_fps - current_fps) / baseline_fps * 100.0
    } else {
        0.0
    };

    let fps_ok = regress_pct <= config.max_regress_pct;
    let speedup_ok = speedup >= config.min_speedup;
    let mut text = String::new();
    text.push_str(&format!(
        "bench-check: cached {:.0} frames/s vs baseline {:.0} ({}{:.1}%, limit -{:.1}%) .. {}\n",
        current_fps,
        baseline_fps,
        if regress_pct > 0.0 { "-" } else { "+" },
        regress_pct.abs(),
        config.max_regress_pct,
        if fps_ok { "ok" } else { "REGRESSED" },
    ));
    text.push_str(&format!(
        "bench-check: speedup {:.2}x (floor {:.2}x) .. {}\n",
        speedup,
        config.min_speedup,
        if speedup_ok { "ok" } else { "BELOW FLOOR" },
    ));
    text.push_str(&format!(
        "bench-check: verdicts_identical .. {}\n",
        if identical { "ok" } else { "FAILED" },
    ));

    // Backend conformance: when the bench raced the reactor core, its
    // verdict stream must have matched the threaded one byte for byte.
    // Absent section (a pre-reactor document) is not a failure.
    let reactor_ok = match current.get("reactor") {
        None => true,
        Some(section) => {
            let ok = section
                .get("verdicts_identical")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            let vs = section
                .get("vs_threaded")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            text.push_str(&format!(
                "bench-check: reactor verdicts_identical (vs threaded {:.2}x) .. {}\n",
                vs,
                if ok { "ok" } else { "FAILED" },
            ));
            ok
        }
    };

    // Quantization gate: when the bench raced the fixed-point fast
    // path, its verdict stream must have been byte-identical AND the
    // assess-stage speedup must clear the floor. Throughput regression
    // is checked against the baseline's quant section when both carry
    // one. Absent section (a pre-quant document) is not a failure.
    let quant_ok = match current.get("quant") {
        None => true,
        Some(section) => {
            let identical = section
                .get("verdicts_identical")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            let assess = section
                .get("assess_speedup")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let assess_ok = assess >= config.min_quant_assess_speedup;
            text.push_str(&format!(
                "bench-check: quant verdicts_identical .. {}\n",
                if identical { "ok" } else { "FAILED" },
            ));
            text.push_str(&format!(
                "bench-check: quant assess_speedup {:.2}x (floor {:.2}x) .. {}\n",
                assess,
                config.min_quant_assess_speedup,
                if assess_ok { "ok" } else { "BELOW FLOOR" },
            ));
            let quant_fps = |doc: &Value| {
                doc.get("quant")
                    .and_then(|q| q.get("frames_per_sec"))
                    .and_then(Value::as_f64)
            };
            let regress_ok = match (quant_fps(current), quant_fps(baseline)) {
                (Some(cur), Some(base)) if base > 0.0 => {
                    let pct = (base - cur) / base * 100.0;
                    let ok = pct <= config.max_regress_pct;
                    text.push_str(&format!(
                        "bench-check: quant {:.0} frames/s vs baseline {:.0} \
                         ({}{:.1}%, limit -{:.1}%) .. {}\n",
                        cur,
                        base,
                        if pct > 0.0 { "-" } else { "+" },
                        pct.abs(),
                        config.max_regress_pct,
                        if ok { "ok" } else { "REGRESSED" },
                    ));
                    ok
                }
                _ => true,
            };
            identical && assess_ok && regress_ok
        }
    };
    Ok(BenchCheckReport {
        pass: fps_ok && speedup_ok && identical && reactor_ok && quant_ok,
        text,
    })
}

/// Runs the fleet gate over an already-loaded `BENCH_fleet.json`
/// document. Unlike [`check_documents`] there is no baseline: every
/// check is an absolute claim the bench makes about itself — merged
/// verdict streams identical at every node count, aggregate frames/sec
/// scaling monotonically with node count (per-step slack, overall
/// floor), and the mid-rollout node-kill leg keeping every node's books
/// balanced with zero garbage verdicts and zero fleet-wide failures.
pub fn check_fleet_document(
    current: &Value,
    config: BenchCheckConfig,
) -> Result<BenchCheckReport, String> {
    let schema = current
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("fleet bench json has no schema tag")?;
    if schema != "polygraph.bench_fleet.v1" {
        return Err(format!("unsupported fleet bench schema {schema:?}"));
    }

    let identical = current
        .get("verdicts_identical")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let legs: Vec<(u64, f64)> = current
        .get("legs")
        .and_then(Value::as_array)
        .ok_or("fleet bench json has no legs array")?
        .iter()
        .map(|leg| {
            let nodes = leg
                .get("nodes")
                .and_then(Value::as_u64)
                .ok_or("fleet leg has no node count")?;
            let fps = leg
                .get("frames_per_sec")
                .and_then(Value::as_f64)
                .ok_or("fleet leg has no frames_per_sec")?;
            Ok((nodes, fps))
        })
        .collect::<Result<_, String>>()?;
    if legs.len() < 2 {
        return Err("fleet bench json needs at least two scaling legs".to_string());
    }

    let mut text = String::new();
    text.push_str(&format!(
        "bench-check: fleet verdicts_identical .. {}\n",
        if identical { "ok" } else { "FAILED" },
    ));

    let slack = 1.0 - config.fleet_step_slack_pct / 100.0;
    let mut steps_ok = true;
    for pair in legs.windows(2) {
        let ((n_a, fps_a), (n_b, fps_b)) = (pair[0], pair[1]);
        let ok = fps_b >= fps_a * slack;
        steps_ok &= ok;
        text.push_str(&format!(
            "bench-check: fleet {n_a}->{n_b} nodes {:.0} -> {:.0} frames/s \
             (slack -{:.1}%) .. {}\n",
            fps_a,
            fps_b,
            config.fleet_step_slack_pct,
            if ok { "ok" } else { "NOT MONOTONIC" },
        ));
    }
    let first = legs[0].1.max(1e-9);
    let scaling = legs[legs.len() - 1].1 / first;
    let scaling_ok = scaling >= config.min_fleet_scaling;
    text.push_str(&format!(
        "bench-check: fleet scaling {}->{} nodes {:.2}x (floor {:.2}x) .. {}\n",
        legs[0].0,
        legs[legs.len() - 1].0,
        scaling,
        config.min_fleet_scaling,
        if scaling_ok { "ok" } else { "BELOW FLOOR" },
    ));

    let chaos = current
        .get("chaos")
        .ok_or("fleet bench json has no chaos section")?;
    let chaos_flag = |name: &str| chaos.get(name).and_then(Value::as_bool).unwrap_or(false);
    let books = chaos_flag("books_balanced");
    let chaos_verdicts = chaos_flag("verdicts_match");
    let exhausted = chaos
        .get("exhausted")
        .and_then(Value::as_u64)
        .unwrap_or(u64::MAX);
    let chaos_ok = books && chaos_verdicts && exhausted == 0;
    text.push_str(&format!(
        "bench-check: fleet chaos books_balanced {books}, verdicts_match {chaos_verdicts}, \
         exhausted {exhausted} .. {}\n",
        if chaos_ok { "ok" } else { "FAILED" },
    ));

    Ok(BenchCheckReport {
        pass: identical && steps_ok && scaling_ok && chaos_ok,
        text,
    })
}

/// File-path front end of [`check_fleet_document`].
pub fn check_fleet_file(
    current: &Path,
    config: BenchCheckConfig,
) -> Result<BenchCheckReport, String> {
    let text = std::fs::read_to_string(current)
        .map_err(|e| format!("cannot read {}: {e}", current.display()))?;
    let doc = serde_json::parse_value(&text)
        .map_err(|e| format!("cannot parse {}: {e}", current.display()))?;
    check_fleet_document(&doc, config)
}

/// Runs the retrain gate over an already-loaded `BENCH_retrain.json`
/// document. Like the fleet gate there is no baseline: every check is
/// an absolute claim the streaming retrain pipeline makes about itself —
/// the warm-started mini-batch refit costs at most `1/min_retrain_speedup`
/// of a full-window fit, the shadow leg's live agreement rate clears the
/// floor, and the promoted candidate's verdict stream is byte-identical
/// to a from-scratch refit on the same window.
pub fn check_retrain_document(
    current: &Value,
    config: BenchCheckConfig,
) -> Result<BenchCheckReport, String> {
    let schema = current
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("retrain bench json has no schema tag")?;
    if schema != "polygraph.bench_retrain.v1" {
        return Err(format!("unsupported retrain bench schema {schema:?}"));
    }

    let speedup = current
        .get("refit_speedup")
        .and_then(Value::as_f64)
        .ok_or("retrain bench json has no refit_speedup")?;
    let shadow = current
        .get("shadow")
        .ok_or("retrain bench json has no shadow section")?;
    let agreement = shadow
        .get("agreement")
        .and_then(Value::as_f64)
        .ok_or("retrain shadow section has no agreement")?;
    let compared = shadow.get("compared").and_then(Value::as_u64).unwrap_or(0);
    let identical = current
        .get("verdicts_identical")
        .and_then(Value::as_bool)
        .unwrap_or(false);

    let speedup_ok = speedup >= config.min_retrain_speedup;
    // An agreement rate over zero comparisons is vacuous, not passing.
    let agreement_ok = compared > 0 && agreement >= config.min_shadow_agreement;
    let mut text = String::new();
    text.push_str(&format!(
        "bench-check: retrain refit_speedup {:.2}x (floor {:.2}x) .. {}\n",
        speedup,
        config.min_retrain_speedup,
        if speedup_ok { "ok" } else { "BELOW FLOOR" },
    ));
    text.push_str(&format!(
        "bench-check: retrain shadow agreement {:.4} over {} frames (floor {:.4}) .. {}\n",
        agreement,
        compared,
        config.min_shadow_agreement,
        if agreement_ok { "ok" } else { "BELOW FLOOR" },
    ));
    text.push_str(&format!(
        "bench-check: retrain verdicts_identical .. {}\n",
        if identical { "ok" } else { "FAILED" },
    ));

    Ok(BenchCheckReport {
        pass: speedup_ok && agreement_ok && identical,
        text,
    })
}

/// File-path front end of [`check_retrain_document`].
pub fn check_retrain_file(
    current: &Path,
    config: BenchCheckConfig,
) -> Result<BenchCheckReport, String> {
    let text = std::fs::read_to_string(current)
        .map_err(|e| format!("cannot read {}: {e}", current.display()))?;
    let doc = serde_json::parse_value(&text)
        .map_err(|e| format!("cannot parse {}: {e}", current.display()))?;
    check_retrain_document(&doc, config)
}

fn fps(doc: &Value, which: &str) -> Result<f64, String> {
    doc.get("cached")
        .and_then(|c| c.get("frames_per_sec"))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{which} bench json has no cached.frames_per_sec"))
}

/// File-path front end of [`check_documents`].
pub fn check_files(
    current: &Path,
    baseline: &Path,
    config: BenchCheckConfig,
) -> Result<BenchCheckReport, String> {
    let load = |path: &Path| -> Result<Value, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        serde_json::parse_value(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
    };
    check_documents(&load(current)?, &load(baseline)?, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(fps: f64, speedup: f64, identical: bool) -> Value {
        serde_json::parse_value(&format!(
            r#"{{
                "schema": "polygraph.bench_serving.v1",
                "speedup": {speedup},
                "verdicts_identical": {identical},
                "cached": {{"frames_per_sec": {fps}}},
                "uncached": {{"frames_per_sec": 1.0}}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn within_tolerance_passes() {
        let report = check_documents(
            &doc(900.0, 2.4, true),
            &doc(1000.0, 2.6, true),
            BenchCheckConfig::default(),
        )
        .unwrap();
        assert!(report.pass, "{}", report.text);
        assert!(report.text.contains("ok"));
    }

    #[test]
    fn improvement_passes() {
        let report = check_documents(
            &doc(1500.0, 2.9, true),
            &doc(1000.0, 2.6, true),
            BenchCheckConfig::default(),
        )
        .unwrap();
        assert!(report.pass, "{}", report.text);
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let report = check_documents(
            &doc(700.0, 2.4, true),
            &doc(1000.0, 2.6, true),
            BenchCheckConfig::default(),
        )
        .unwrap();
        assert!(!report.pass);
        assert!(report.text.contains("REGRESSED"), "{}", report.text);
    }

    #[test]
    fn speedup_below_floor_fails() {
        let report = check_documents(
            &doc(1000.0, 1.1, true),
            &doc(1000.0, 2.6, true),
            BenchCheckConfig::default(),
        )
        .unwrap();
        assert!(!report.pass);
        assert!(report.text.contains("BELOW FLOOR"), "{}", report.text);
    }

    fn with_reactor(mut doc: Value, identical: bool) -> Value {
        if let Value::Object(map) = &mut doc {
            map.insert(
                "reactor".to_string(),
                serde_json::parse_value(&format!(
                    r#"{{"frames_per_sec": 900.0, "verdicts_identical": {identical},
                        "vs_threaded": 0.9}}"#
                ))
                .unwrap(),
            );
        }
        doc
    }

    #[test]
    fn reactor_conformance_gates_when_present() {
        let baseline = doc(1000.0, 2.6, true);
        let good = with_reactor(doc(1000.0, 2.6, true), true);
        let report = check_documents(&good, &baseline, BenchCheckConfig::default()).unwrap();
        assert!(report.pass, "{}", report.text);
        assert!(report.text.contains("reactor verdicts_identical"));

        let bad = with_reactor(doc(1000.0, 2.6, true), false);
        let report = check_documents(&bad, &baseline, BenchCheckConfig::default()).unwrap();
        assert!(!report.pass);
        assert!(report.text.contains("FAILED"), "{}", report.text);
    }

    #[test]
    fn pre_reactor_documents_still_pass() {
        // A document without a `reactor` section (the pre-reactor bench
        // schema) must not fail the gate.
        let report = check_documents(
            &doc(1000.0, 2.6, true),
            &doc(1000.0, 2.6, true),
            BenchCheckConfig::default(),
        )
        .unwrap();
        assert!(report.pass, "{}", report.text);
        assert!(!report.text.contains("reactor"));
    }

    fn with_quant(mut doc: Value, identical: bool, assess_speedup: f64, fps: f64) -> Value {
        if let Value::Object(map) = &mut doc {
            map.insert(
                "quant".to_string(),
                serde_json::parse_value(&format!(
                    r#"{{"frames_per_sec": {fps}, "verdicts_identical": {identical},
                        "vs_uncached": 1.1, "assess_speedup": {assess_speedup}}}"#
                ))
                .unwrap(),
            );
        }
        doc
    }

    #[test]
    fn quant_gate_passes_and_gates_when_present() {
        let baseline = with_quant(doc(1000.0, 2.6, true), true, 1.6, 900.0);
        let good = with_quant(doc(1000.0, 2.6, true), true, 1.6, 900.0);
        let report = check_documents(&good, &baseline, BenchCheckConfig::default()).unwrap();
        assert!(report.pass, "{}", report.text);
        assert!(report.text.contains("quant assess_speedup 1.60x"));

        let nondeterministic = with_quant(doc(1000.0, 2.6, true), false, 1.6, 900.0);
        let report =
            check_documents(&nondeterministic, &baseline, BenchCheckConfig::default()).unwrap();
        assert!(!report.pass, "{}", report.text);
        assert!(report.text.contains("quant verdicts_identical .. FAILED"));
    }

    #[test]
    fn quant_assess_speedup_below_floor_fails() {
        let baseline = with_quant(doc(1000.0, 2.6, true), true, 1.6, 900.0);
        let slow = with_quant(doc(1000.0, 2.6, true), true, 1.1, 900.0);
        let report = check_documents(&slow, &baseline, BenchCheckConfig::default()).unwrap();
        assert!(!report.pass, "{}", report.text);
        assert!(report.text.contains("BELOW FLOOR"), "{}", report.text);
    }

    #[test]
    fn quant_throughput_regression_fails() {
        let baseline = with_quant(doc(1000.0, 2.6, true), true, 1.6, 1000.0);
        let regressed = with_quant(doc(1000.0, 2.6, true), true, 1.6, 700.0);
        let report = check_documents(&regressed, &baseline, BenchCheckConfig::default()).unwrap();
        assert!(!report.pass, "{}", report.text);
        assert!(report.text.contains("REGRESSED"), "{}", report.text);
        // A baseline without a quant section skips only the regression
        // comparison, not the determinism or floor checks.
        let old_baseline = doc(1000.0, 2.6, true);
        let report =
            check_documents(&regressed, &old_baseline, BenchCheckConfig::default()).unwrap();
        assert!(report.pass, "{}", report.text);
    }

    #[test]
    fn pre_quant_documents_still_pass() {
        let report = check_documents(
            &doc(1000.0, 2.6, true),
            &doc(1000.0, 2.6, true),
            BenchCheckConfig::default(),
        )
        .unwrap();
        assert!(report.pass, "{}", report.text);
        assert!(!report.text.contains("quant"));
    }

    #[test]
    fn nondeterministic_verdicts_fail() {
        let report = check_documents(
            &doc(1000.0, 2.6, false),
            &doc(1000.0, 2.6, true),
            BenchCheckConfig::default(),
        )
        .unwrap();
        assert!(!report.pass);
    }

    #[test]
    fn wrong_schema_is_an_error() {
        let mut bad = doc(1.0, 1.0, true);
        if let Value::Object(map) = &mut bad {
            map.insert(
                "schema".to_string(),
                Value::String("something.else".to_string()),
            );
        }
        let err = check_documents(&bad, &doc(1.0, 1.0, true), BenchCheckConfig::default());
        assert!(err.is_err());
    }

    fn fleet_doc(
        fps: &[f64],
        identical: bool,
        books: bool,
        matches: bool,
        exhausted: u64,
    ) -> Value {
        let legs: Vec<String> = fps
            .iter()
            .zip([1u64, 2, 4])
            .map(|(f, n)| format!(r#"{{"nodes": {n}, "frames_per_sec": {f}}}"#))
            .collect();
        serde_json::parse_value(&format!(
            r#"{{
                "schema": "polygraph.bench_fleet.v1",
                "verdicts_identical": {identical},
                "legs": [{}],
                "chaos": {{
                    "books_balanced": {books},
                    "verdicts_match": {matches},
                    "exhausted": {exhausted}
                }}
            }}"#,
            legs.join(",")
        ))
        .unwrap()
    }

    #[test]
    fn fleet_monotonic_scaling_passes() {
        let report = check_fleet_document(
            &fleet_doc(&[500.0, 650.0, 800.0], true, true, true, 0),
            BenchCheckConfig::default(),
        )
        .unwrap();
        assert!(report.pass, "{}", report.text);
        assert!(report.text.contains("fleet scaling 1->4 nodes 1.60x"));
    }

    #[test]
    fn fleet_step_slack_absorbs_small_dips_only() {
        // A 3% dip on one step rides inside the 5% slack as long as the
        // overall floor holds…
        let report = check_fleet_document(
            &fleet_doc(&[500.0, 485.0, 800.0], true, true, true, 0),
            BenchCheckConfig::default(),
        )
        .unwrap();
        assert!(report.pass, "{}", report.text);
        // …but a real step regression is rejected.
        let report = check_fleet_document(
            &fleet_doc(&[500.0, 400.0, 800.0], true, true, true, 0),
            BenchCheckConfig::default(),
        )
        .unwrap();
        assert!(!report.pass);
        assert!(report.text.contains("NOT MONOTONIC"), "{}", report.text);
    }

    #[test]
    fn fleet_scaling_below_floor_fails() {
        let report = check_fleet_document(
            &fleet_doc(&[500.0, 505.0, 510.0], true, true, true, 0),
            BenchCheckConfig::default(),
        )
        .unwrap();
        assert!(!report.pass);
        assert!(report.text.contains("BELOW FLOOR"), "{}", report.text);
    }

    #[test]
    fn fleet_divergent_verdicts_or_broken_chaos_fail() {
        let config = BenchCheckConfig::default();
        let divergent = fleet_doc(&[500.0, 650.0, 800.0], false, true, true, 0);
        assert!(!check_fleet_document(&divergent, config).unwrap().pass);
        let unbalanced = fleet_doc(&[500.0, 650.0, 800.0], true, false, true, 0);
        assert!(!check_fleet_document(&unbalanced, config).unwrap().pass);
        let garbage = fleet_doc(&[500.0, 650.0, 800.0], true, true, false, 0);
        assert!(!check_fleet_document(&garbage, config).unwrap().pass);
        let starved = fleet_doc(&[500.0, 650.0, 800.0], true, true, true, 3);
        let report = check_fleet_document(&starved, config).unwrap();
        assert!(!report.pass);
        assert!(report.text.contains("exhausted 3"), "{}", report.text);
    }

    #[test]
    fn fleet_wrong_schema_is_an_error() {
        let mut bad = fleet_doc(&[1.0, 2.0, 3.0], true, true, true, 0);
        if let Value::Object(map) = &mut bad {
            map.insert(
                "schema".to_string(),
                Value::String("polygraph.bench_serving.v1".to_string()),
            );
        }
        assert!(check_fleet_document(&bad, BenchCheckConfig::default()).is_err());
    }

    #[test]
    fn committed_fleet_artifact_gates_itself() {
        // The repo's committed fleet artifact must always pass its gate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let artifact = root.join("results/BENCH_fleet.json");
        let report =
            check_fleet_file(&artifact, BenchCheckConfig::default()).expect("parse fleet artifact");
        assert!(report.pass, "{}", report.text);
    }

    fn retrain_doc(speedup: f64, agreement: f64, compared: u64, identical: bool) -> Value {
        serde_json::parse_value(&format!(
            r#"{{
                "schema": "polygraph.bench_retrain.v1",
                "refit_speedup": {speedup},
                "verdicts_identical": {identical},
                "shadow": {{
                    "compared": {compared},
                    "diverged": 0,
                    "agreement": {agreement}
                }}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn retrain_within_floors_passes() {
        let report = check_retrain_document(
            &retrain_doc(8.0, 0.999, 8000, true),
            BenchCheckConfig::default(),
        )
        .unwrap();
        assert!(report.pass, "{}", report.text);
        assert!(report.text.contains("refit_speedup 8.00x"));
    }

    #[test]
    fn retrain_slow_refit_or_low_agreement_fails() {
        let config = BenchCheckConfig::default();
        let slow = check_retrain_document(&retrain_doc(1.4, 0.999, 8000, true), config).unwrap();
        assert!(!slow.pass);
        assert!(slow.text.contains("BELOW FLOOR"), "{}", slow.text);
        let noisy = check_retrain_document(&retrain_doc(8.0, 0.90, 8000, true), config).unwrap();
        assert!(!noisy.pass);
        assert!(noisy.text.contains("BELOW FLOOR"), "{}", noisy.text);
    }

    #[test]
    fn retrain_vacuous_agreement_fails() {
        // A perfect agreement rate over zero compared frames means the
        // shadow never saw traffic — the bench leg failed, not passed.
        let report =
            check_retrain_document(&retrain_doc(8.0, 1.0, 0, true), BenchCheckConfig::default())
                .unwrap();
        assert!(!report.pass, "{}", report.text);
    }

    #[test]
    fn retrain_divergent_verdicts_fail() {
        let report = check_retrain_document(
            &retrain_doc(8.0, 0.999, 8000, false),
            BenchCheckConfig::default(),
        )
        .unwrap();
        assert!(!report.pass);
        assert!(report.text.contains("FAILED"), "{}", report.text);
    }

    #[test]
    fn retrain_wrong_schema_is_an_error() {
        let mut bad = retrain_doc(8.0, 0.999, 8000, true);
        if let Value::Object(map) = &mut bad {
            map.insert(
                "schema".to_string(),
                Value::String("polygraph.bench_fleet.v1".to_string()),
            );
        }
        assert!(check_retrain_document(&bad, BenchCheckConfig::default()).is_err());
    }

    #[test]
    fn committed_retrain_artifact_gates_itself() {
        // The repo's committed retrain artifact must always pass its gate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let artifact = root.join("results/BENCH_retrain.json");
        let report = check_retrain_file(&artifact, BenchCheckConfig::default())
            .expect("parse retrain artifact");
        assert!(report.pass, "{}", report.text);
    }

    #[test]
    fn committed_baseline_parses_and_gates_itself() {
        // The repo's committed artifacts must always pass their own gate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let baseline = root.join("results/bench_baseline.json");
        let report =
            check_files(&baseline, &baseline, BenchCheckConfig::default()).expect("parse baseline");
        assert!(report.pass, "{}", report.text);
    }
}
