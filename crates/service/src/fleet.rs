//! Consistent-hash fleet of in-process risk servers with rolling model
//! rollout.
//!
//! One risk-server process does not reach the paper's deployment scale
//! (§1, §4: one signal inside a top financial institution's risk-based
//! authentication stack). This module shards the key space across N
//! independent nodes — each a full [`RiskServerHandle`] with its own
//! cache, shedding, and degradation machinery — and rolls new models
//! across them one stage at a time:
//!
//! * [`FleetRouter`] — a consistent-hash ring over
//!   [`fingerprint::submission_cache_key`]: each node owns
//!   `replicas_per_node` pseudo-random points on a `u64` circle, a key is
//!   served by the first point clockwise from its hash, and killing a
//!   node reassigns *only that node's* key ranges (to each range's next
//!   distinct live node), leaving every other key's owner — and therefore
//!   every other node's verdict cache — untouched.
//! * [`RiskFleet`] — N in-process servers (either connection backend)
//!   sharing one on-disk [`ModelRegistry`]; each node keeps its own swap
//!   epoch ([`RiskServerHandle::cache_epoch`]) and serving-model version
//!   ([`RiskServerHandle::active_model_version`]).
//! * [`FleetClient`] — routes each submission to its ring owner and fails
//!   over along the ring's preference order when a node is dead or
//!   misbehaving, counting hops in `fleet.client.failovers`.
//! * [`RolloutController`] — promotes a registry-published model across
//!   the fleet canary → 50% → full. Before each node is swapped, the
//!   candidate is replayed against that node's *serving* model on a fixed
//!   sample; the per-node verdict-divergence counters
//!   (`fleet.rollout.compared.node<i>` / `fleet.rollout.diverged.node<i>`)
//!   gate the promotion — a divergence fraction above the configured
//!   budget blocks the rollout with the un-promoted nodes still serving
//!   the old model.
//!
//! All fleet-level metrics live in the fleet's own [`Registry`], never in
//! a node's: node registries keep their exact single-server exposition.

use crate::client::{RiskClient, RiskClientConfig};
use crate::proto::Verdict;
use crate::registry::ModelRegistry;
use crate::server::{start_risk_server_with, RiskServerConfig, RiskServerHandle, RiskServerStats};
use browser_engine::UserAgent;
use fingerprint::{encode_submission, submission_cache_key, Submission};
use polygraph_core::{Detector, TrainedModel};
use polygraph_obs::{Counter, Registry};
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

/// Metric names the fleet records into its own registry (see
/// [`RiskFleet::obs`]); node-local metrics stay in each node's registry.
pub mod metric_names {
    /// Submissions routed through a [`super::FleetClient`] (counter).
    pub const ROUTED: &str = "fleet.client.routed";
    /// Failover hops to the next ring node after the preferred node
    /// failed a whole client exchange, retries included (counter).
    pub const FAILOVERS: &str = "fleet.client.failovers";
    /// Submissions that failed on every live node (counter).
    pub const EXHAUSTED: &str = "fleet.client.exhausted";
    /// Highest rollout stage reached: 1 canary, 2 half, 3 full (gauge).
    pub const ROLLOUT_STAGE: &str = "fleet.rollout.stage";

    /// Sample verdicts compared on node `node` before its promotion.
    pub fn compared(node: usize) -> String {
        format!("fleet.rollout.compared.node{node}")
    }

    /// Compared verdicts that diverged (flagged or risk factor changed,
    /// or error-ness changed) on node `node`.
    pub fn diverged(node: usize) -> String {
        format!("fleet.rollout.diverged.node{node}")
    }

    /// Registry version node `node` was last promoted to (gauge).
    pub fn node_version(node: usize) -> String {
        format!("fleet.node{node}.model_version")
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` — the same deterministic, seed-free hash family
/// the wire cache key uses, so ring placement never depends on process
/// state.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A consistent-hash ring mapping `u64` keys to node indices.
///
/// Immutable once built: liveness is an argument
/// ([`FleetRouter::route_live`]), not ring state, so every client and
/// test sees the identical ring for a given `(nodes, replicas)` pair.
#[derive(Debug, Clone)]
pub struct FleetRouter {
    /// `(point, node)` sorted by point; a key is owned by the first
    /// point at or after its hash, wrapping at the top of the circle.
    ring: Vec<(u64, usize)>,
    nodes: usize,
}

impl FleetRouter {
    /// Builds the ring for `nodes` nodes with `replicas_per_node`
    /// virtual points each (both clamped to at least 1). Points are
    /// FNV-1a hashes of the `(node, replica)` pair — fully deterministic.
    pub fn new(nodes: usize, replicas_per_node: usize) -> Self {
        let nodes = nodes.max(1);
        let replicas = replicas_per_node.max(1);
        let mut ring = Vec::with_capacity(nodes.saturating_mul(replicas));
        for node in 0..nodes {
            for replica in 0..replicas {
                let mut tag = [0u8; 16];
                for (dst, src) in tag.iter_mut().zip(
                    (node as u64)
                        .to_le_bytes()
                        .into_iter()
                        .chain((replica as u64).to_le_bytes()),
                ) {
                    *dst = src;
                }
                ring.push((fnv1a64(&tag), node));
            }
        }
        ring.sort_unstable();
        // A 64-bit point collision between two nodes is astronomically
        // unlikely; keep the first deterministically if it ever happens.
        ring.dedup_by_key(|entry| entry.0);
        Self { ring, nodes }
    }

    /// Number of nodes the ring was built for.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Index of the first ring point at or after `key`, wrapping.
    fn ring_start(&self, key: u64) -> usize {
        let len = self.ring.len().max(1);
        match self.ring.binary_search_by(|probe| probe.0.cmp(&key)) {
            Ok(i) => i,
            Err(i) => i % len,
        }
    }

    /// The node owning `key` (its preferred server, dead or alive).
    pub fn route(&self, key: u64) -> usize {
        self.ring
            .get(self.ring_start(key))
            .map(|&(_, node)| node)
            .unwrap_or(0)
    }

    /// Every node in failover order for `key`: the owner first, then
    /// each further *distinct* node in ring order. Killing the owner
    /// moves the key to `preference(key)[1]` — and keys owned by other
    /// nodes never move, which is the whole point of the ring.
    pub fn preference(&self, key: u64) -> Vec<usize> {
        let len = self.ring.len().max(1);
        let start = self.ring_start(key);
        let mut seen = vec![false; self.nodes];
        let mut out = Vec::with_capacity(self.nodes);
        for offset in 0..self.ring.len() {
            let Some(&(_, node)) = self.ring.get((start + offset) % len) else {
                continue;
            };
            if let Some(flag) = seen.get_mut(node) {
                if !*flag {
                    *flag = true;
                    out.push(node);
                }
            }
            if out.len() == self.nodes {
                break;
            }
        }
        out
    }

    /// The first live node in `key`'s preference order, or `None` when
    /// `live` marks every node dead.
    pub fn route_live(&self, key: u64, live: &[bool]) -> Option<usize> {
        self.preference(key)
            .into_iter()
            .find(|&node| live.get(node).copied().unwrap_or(false))
    }
}

/// Settings of a [`RiskFleet`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Node count (clamped to at least 1).
    pub nodes: usize,
    /// Virtual ring points per node; more points smooth the key-range
    /// split at the cost of a larger (still tiny) ring.
    pub replicas_per_node: usize,
    /// Configuration applied to every node — backend, cache, shedding,
    /// clock. Nodes are identical by construction so the merged verdict
    /// stream cannot depend on which node answered.
    pub node: RiskServerConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            nodes: 2,
            replicas_per_node: 64,
            node: RiskServerConfig::default(),
        }
    }
}

/// N in-process risk servers behind one consistent-hash router.
pub struct RiskFleet {
    /// `None` marks a killed node; its ring ranges fail over.
    nodes: Vec<Option<RiskServerHandle>>,
    addrs: Vec<SocketAddr>,
    router: FleetRouter,
    obs: Arc<Registry>,
}

impl RiskFleet {
    /// Starts `config.nodes` servers on ephemeral loopback ports, every
    /// one serving `model` under an identical node config.
    pub fn start(model: &TrainedModel, config: FleetConfig) -> io::Result<Self> {
        let count = config.nodes.max(1);
        let router = FleetRouter::new(count, config.replicas_per_node);
        let obs = Arc::new(Registry::new(Arc::clone(&config.node.clock)));
        let mut nodes = Vec::with_capacity(count);
        let mut addrs = Vec::with_capacity(count);
        for _ in 0..count {
            let handle = start_risk_server_with(
                "127.0.0.1:0",
                Detector::new(model.clone()),
                config.node.clone(),
            )?;
            addrs.push(handle.local_addr());
            nodes.push(Some(handle));
        }
        Ok(Self {
            nodes,
            addrs,
            router,
            obs,
        })
    }

    /// Number of nodes the fleet was started with (killed ones included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The ring assigning keys to nodes.
    pub fn router(&self) -> &FleetRouter {
        &self.router
    }

    /// The fleet-level metrics registry (client routing counters,
    /// rollout divergence counters). Distinct from every node registry.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// Listening address of node `node` (even if it was killed since).
    pub fn addr(&self, node: usize) -> Option<SocketAddr> {
        self.addrs.get(node).copied()
    }

    /// Handle of node `node`, `None` when out of range or killed.
    pub fn node(&self, node: usize) -> Option<&RiskServerHandle> {
        self.nodes.get(node).and_then(Option::as_ref)
    }

    /// Liveness map, indexed by node.
    pub fn live(&self) -> Vec<bool> {
        self.nodes.iter().map(Option::is_some).collect()
    }

    /// Point-in-time counters of node `node`, `None` when killed.
    pub fn node_stats(&self, node: usize) -> Option<RiskServerStats> {
        self.node(node).map(RiskServerHandle::stats)
    }

    /// Kills node `node` (shutting its server down); returns whether a
    /// live node was actually killed. Its key ranges fail over to each
    /// range's next distinct live node on the ring; other keys keep
    /// their owner.
    pub fn kill_node(&mut self, node: usize) -> bool {
        match self.nodes.get_mut(node).and_then(Option::take) {
            Some(handle) => {
                handle.shutdown();
                true
            }
            None => false,
        }
    }

    /// Shuts down every remaining live node.
    pub fn shutdown(mut self) {
        for slot in &mut self.nodes {
            if let Some(handle) = slot.take() {
                handle.shutdown();
            }
        }
    }
}

/// A router-aware client: one lazily-connected [`RiskClient`] per node,
/// each submission sent to its ring owner with failover along the ring.
pub struct FleetClient {
    addrs: Vec<SocketAddr>,
    router: FleetRouter,
    config: RiskClientConfig,
    clients: Vec<Option<RiskClient>>,
    obs: Arc<Registry>,
    routed: Arc<Counter>,
    failovers: Arc<Counter>,
    exhausted: Arc<Counter>,
}

impl FleetClient {
    /// A client over `fleet`'s current node addresses, recording into
    /// the fleet's metrics registry.
    pub fn connect(fleet: &RiskFleet, config: RiskClientConfig) -> Self {
        Self::from_addrs(
            fleet.addrs.clone(),
            fleet.router.clone(),
            config,
            Arc::clone(&fleet.obs),
        )
    }

    /// A client over explicit node addresses — the seam chaos tests use
    /// to interpose a proxy in front of individual nodes. `addrs` must
    /// be indexed like the router's nodes.
    pub fn from_addrs(
        addrs: Vec<SocketAddr>,
        router: FleetRouter,
        config: RiskClientConfig,
        obs: Arc<Registry>,
    ) -> Self {
        let clients = (0..addrs.len()).map(|_| None).collect();
        Self {
            routed: obs.counter(metric_names::ROUTED),
            failovers: obs.counter(metric_names::FAILOVERS),
            exhausted: obs.counter(metric_names::EXHAUSTED),
            addrs,
            router,
            config,
            clients,
            obs,
        }
    }

    /// The registry this client's routing counters (and the per-node
    /// [`RiskClient`] metrics, aggregated fleet-wide) land in.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The ring this client routes with.
    pub fn router(&self) -> &FleetRouter {
        &self.router
    }

    fn client_for(&mut self, node: usize) -> io::Result<&mut RiskClient> {
        let addr = *self.addrs.get(node).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "node index out of range")
        })?;
        let slot = self.clients.get_mut(node).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "node index out of range")
        })?;
        if slot.is_none() {
            let mut config = self.config.clone();
            // Per-node jitter streams: a fleet client retrying against
            // two nodes must not sleep in lockstep on both.
            config.retry_seed = self
                .config
                .retry_seed
                .wrapping_add((node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            *slot = Some(RiskClient::connect_with_config(
                addr,
                Arc::clone(&self.obs),
                config,
            )?);
        }
        slot.as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "node client unavailable"))
    }

    /// Routes one submission to its ring owner; on a whole-exchange
    /// failure there (the per-node client's own retries exhausted, or
    /// the node unreachable) fails over to the next distinct node in
    /// ring order, and so on around the ring. Errors only when every
    /// node failed (`fleet.client.exhausted`).
    pub fn assess_submission(&mut self, sub: &Submission) -> io::Result<Verdict> {
        let frame = encode_submission(sub)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        // The exact key the node-side verdict cache shards on; frames
        // too malformed to key still deserve a (malformed) verdict, so
        // they route by a hash of the whole frame.
        let key = submission_cache_key(&frame).unwrap_or_else(|| fnv1a64(&frame));
        self.routed.inc();
        let mut last_err = None;
        for (hop, node) in self.router.preference(key).into_iter().enumerate() {
            if hop > 0 {
                self.failovers.inc();
            }
            match self
                .client_for(node)
                .and_then(|client| client.assess_submission(sub))
            {
                Ok(verdict) => return Ok(verdict),
                Err(e) => {
                    // Drop the node's client: a dead node must not keep
                    // a poisoned slot warm, and a revived one gets a
                    // fresh connection (and a fresh backoff slate).
                    if let Some(slot) = self.clients.get_mut(node) {
                        *slot = None;
                    }
                    last_err = Some(e);
                }
            }
        }
        self.exhausted.inc();
        Err(last_err
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "fleet has no nodes")))
    }
}

/// Rollout stages, in promotion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutStage {
    /// First node only.
    Canary,
    /// First half of the fleet (rounded up).
    Half,
    /// Every node.
    Full,
}

impl RolloutStage {
    /// Nodes that must be covered once this stage is promoted.
    fn target(self, nodes: usize) -> usize {
        match self {
            RolloutStage::Canary => 1,
            RolloutStage::Half => nodes.saturating_add(1) / 2,
            RolloutStage::Full => nodes,
        }
        .clamp(1, nodes.max(1))
    }

    fn gauge_value(self) -> i64 {
        match self {
            RolloutStage::Canary => 1,
            RolloutStage::Half => 2,
            RolloutStage::Full => 3,
        }
    }
}

/// What one [`RolloutController::advance`] call did.
#[derive(Debug)]
pub enum RolloutStep {
    /// The stage's nodes now serve the candidate.
    Promoted {
        /// Stage that was just completed.
        stage: RolloutStage,
        /// Nodes newly covered by this step (dead ones skipped over).
        nodes: Vec<usize>,
    },
    /// The divergence gate tripped; `node` (and everything after it)
    /// still serves its old model. Calling `advance` again re-checks.
    Blocked {
        /// Stage that was being promoted.
        stage: RolloutStage,
        /// First node whose divergence exceeded the budget.
        node: usize,
        /// Sample verdicts that diverged on that node.
        diverged: u64,
        /// Sample size compared.
        compared: u64,
    },
    /// Every node already serves the candidate.
    Complete,
}

/// Rolls the registry's latest published model across a fleet canary →
/// 50% → full, gating each node's promotion on candidate-vs-serving
/// verdict divergence over a fixed sample.
pub struct RolloutController {
    version: u64,
    model: TrainedModel,
    candidate: Detector,
    sample: Vec<(Vec<f64>, UserAgent)>,
    max_divergence: f64,
    covered: usize,
}

impl RolloutController {
    /// Loads the newest model from `registry` as the rollout candidate.
    ///
    /// `sample` is the fixed replay set divergence is measured on (raw
    /// feature rows plus the claimed user-agent — the same inputs
    /// [`Detector::assess`] takes); `max_divergence` is the largest
    /// tolerated `diverged / compared` fraction per node. An empty
    /// sample disables the gate (zero compared, zero diverged).
    pub fn new(
        registry: &ModelRegistry,
        sample: Vec<(Vec<f64>, UserAgent)>,
        max_divergence: f64,
    ) -> io::Result<Self> {
        let (version, model) = registry.load_latest_versioned()?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "no published model to roll out")
        })?;
        Ok(Self {
            version,
            candidate: Detector::new(model.clone()),
            model,
            sample,
            max_divergence,
            covered: 0,
        })
    }

    /// Registry version being rolled out.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Nodes covered so far (prefix of the node index space).
    pub fn covered_nodes(&self) -> usize {
        self.covered
    }

    /// The next stage `advance` would attempt, `None` once the fleet is
    /// fully covered.
    pub fn next_stage(&self, nodes: usize) -> Option<RolloutStage> {
        [RolloutStage::Canary, RolloutStage::Half, RolloutStage::Full]
            .into_iter()
            .find(|stage| self.covered < stage.target(nodes))
    }

    /// Attempts the next promotion stage on `fleet`.
    ///
    /// For each node the stage newly covers: measure divergence, record
    /// it (`fleet.rollout.compared.node<i>` / `.diverged.node<i>` in the
    /// fleet registry), and — if within budget — swap the node to the
    /// candidate via [`RiskServerHandle::publish_model_versioned`]
    /// (bumping that node's cache epoch). A node over budget blocks the
    /// rollout right there; a killed node is skipped (there is nothing
    /// to swap, and the rollout must be able to complete around a
    /// failure). Nodes beyond the stage target are untouched — a frame
    /// can never be answered by the candidate on a node the rollout has
    /// not reached.
    pub fn advance(&mut self, fleet: &RiskFleet) -> RolloutStep {
        let nodes = fleet.node_count();
        let Some(stage) = self.next_stage(nodes) else {
            return RolloutStep::Complete;
        };
        let target = stage.target(nodes);
        let mut promoted = Vec::new();
        for index in self.covered..target {
            if let Some(node) = fleet.node(index) {
                let (compared, diverged) = self.divergence_against(node);
                fleet
                    .obs()
                    .counter(&metric_names::compared(index))
                    .add(compared);
                fleet
                    .obs()
                    .counter(&metric_names::diverged(index))
                    .add(diverged);
                if compared > 0 && diverged as f64 > self.max_divergence * compared as f64 {
                    return RolloutStep::Blocked {
                        stage,
                        node: index,
                        diverged,
                        compared,
                    };
                }
                node.publish_model_versioned(self.model.clone(), self.version);
                fleet
                    .obs()
                    .gauge(&metric_names::node_version(index))
                    .set(i64::try_from(self.version).unwrap_or(i64::MAX));
            }
            self.covered = index.saturating_add(1);
            promoted.push(index);
        }
        fleet
            .obs()
            .gauge(metric_names::ROLLOUT_STAGE)
            .set(stage.gauge_value());
        RolloutStep::Promoted {
            stage,
            nodes: promoted,
        }
    }

    /// `(compared, diverged)` of the candidate against `node`'s serving
    /// model over the fixed sample. Divergence means: flaggedness or
    /// risk factor changed, or one side errored where the other did not.
    fn divergence_against(&self, node: &RiskServerHandle) -> (u64, u64) {
        // Clone the serving model out of the slot so no detector guard
        // is held across the replay below.
        let serving = {
            let slot = node.detector_slot();
            let guard = slot.read();
            guard.model().clone()
        };
        let serving = Detector::new(serving);
        let mut diverged = 0u64;
        for (values, claimed) in &self.sample {
            let old = serving.assess(values, *claimed);
            let new = self.candidate.assess(values, *claimed);
            let same = match (old, new) {
                (Ok(a), Ok(b)) => a.flagged == b.flagged && a.risk_factor == b.risk_factor,
                (Err(_), Err(_)) => true,
                _ => false,
            };
            if !same {
                diverged = diverged.saturating_add(1);
            }
        }
        (self.sample.len() as u64, diverged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_every_node() {
        let a = FleetRouter::new(4, 64);
        let b = FleetRouter::new(4, 64);
        let mut hit = [0usize; 4];
        for key in 0..4096u64 {
            let k = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let node = a.route(k);
            assert_eq!(node, b.route(k), "same inputs, same ring");
            hit[node] += 1;
        }
        for (node, &count) in hit.iter().enumerate() {
            assert!(count > 0, "node {node} owns no keys");
        }
    }

    #[test]
    fn preference_lists_every_node_exactly_once_owner_first() {
        let router = FleetRouter::new(5, 16);
        for key in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            let pref = router.preference(key);
            assert_eq!(pref.len(), 5);
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
            assert_eq!(*pref.first().unwrap(), router.route(key));
        }
    }

    #[test]
    fn killing_a_node_moves_only_its_keys() {
        let router = FleetRouter::new(4, 64);
        let all_live = vec![true; 4];
        let mut without_2 = all_live.clone();
        without_2[2] = false;
        for key in 0..4096u64 {
            let k = key.wrapping_mul(0x517C_C1B7_2722_0A95);
            let owner = router.route_live(k, &all_live).unwrap();
            let after = router.route_live(k, &without_2).unwrap();
            if owner == 2 {
                assert_ne!(after, 2, "dead node must not own keys");
                assert_eq!(
                    after,
                    *router
                        .preference(k)
                        .iter()
                        .find(|&&n| n != 2)
                        .unwrap_or(&owner),
                    "failover must follow ring preference order"
                );
            } else {
                assert_eq!(owner, after, "only the dead node's keys may move");
            }
        }
    }

    #[test]
    fn single_node_ring_routes_everything_to_node_zero() {
        let router = FleetRouter::new(1, 8);
        for key in [0u64, 42, u64::MAX] {
            assert_eq!(router.route(key), 0);
            assert_eq!(router.preference(key), vec![0]);
        }
        assert_eq!(router.route_live(7, &[false]), None);
    }

    #[test]
    fn stage_targets_cover_canary_half_full() {
        assert_eq!(RolloutStage::Canary.target(4), 1);
        assert_eq!(RolloutStage::Half.target(4), 2);
        assert_eq!(RolloutStage::Half.target(5), 3);
        assert_eq!(RolloutStage::Full.target(4), 4);
        // A one-node fleet collapses every stage onto that node.
        assert_eq!(RolloutStage::Canary.target(1), 1);
        assert_eq!(RolloutStage::Half.target(1), 1);
        assert_eq!(RolloutStage::Full.target(1), 1);
    }
}
