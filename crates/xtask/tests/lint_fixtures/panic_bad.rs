//! Panic-safety fixture. Never compiled — scanned by
//! `tests/xtask_lint.rs`, which asserts rule codes and exact lines.

pub fn decode(frame: &[u8], text: &str) -> u8 {
    let first = frame[0];
    let parsed = text.parse().unwrap();
    let second = frame.first().expect("non-empty");
    panic!("unreachable: {parsed} {second}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        decode(&[1], "2").checked_add(1).unwrap();
    }
}
