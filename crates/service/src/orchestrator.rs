//! The retraining orchestrator: §6.6 as a running loop.
//!
//! On each checkpoint the orchestrator feeds freshly collected traffic to
//! the drift detector. While releases cluster as expected, nothing
//! happens. When one shifts, it retrains on the fresh window, *validates*
//! the candidate model (a bad window must never replace a good model),
//! publishes it to the registry, and hot-swaps the serving detector.

use crate::registry::ModelRegistry;
use crate::server::RiskServerHandle;
use browser_engine::UserAgent;
use polygraph_core::{
    DriftDecision, DriftDetector, DriftObservation, PolygraphError, TrainConfig, TrainedModel,
    TrainingSet,
};
use polygraph_ml::ThreadPool;
use std::io;

/// Metric names the orchestrator records into the risk server's registry,
/// so one `STATS` snapshot covers serving *and* retraining.
pub mod metric_names {
    /// Drift checkpoints run (counter).
    pub const CHECKPOINTS: &str = "orchestrator.checkpoints";
    /// Per-release drift observations measured (counter).
    pub const DRIFT_EVALUATIONS: &str = "orchestrator.drift.evaluations";
    /// Checkpoints that retrained and swapped a new model in (counter).
    pub const RETRAINS: &str = "orchestrator.drift.retrains";
    /// Checkpoints whose candidate failed the accuracy bar (counter).
    pub const RETRAINS_REJECTED: &str = "orchestrator.drift.rejected";
    /// End-to-end retrain duration in µs, fit through swap (histogram).
    pub const RETRAIN_MICROS: &str = "orchestrator.retrain_micros";
    /// Models published to the on-disk registry (counter).
    pub const REGISTRY_PUBLISHES: &str = "orchestrator.registry.publishes";
    /// Checkpoints whose retrain *errored* (corrupt window) and fell back
    /// to the last-good registry model (counter).
    pub const FALLBACKS: &str = "orchestrator.drift.fallbacks";
}

/// How a validated candidate model reaches serving detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwapPolicy {
    /// Publish to the registry *and* hot-swap this server immediately —
    /// the single-server §6.6 loop.
    #[default]
    PublishAndSwap,
    /// Publish to the registry only. Propagation to serving nodes is
    /// owned by a fleet [`crate::fleet::RolloutController`], which rolls
    /// the published version canary → 50% → full under its per-node
    /// divergence gate; the orchestrator must not swap behind its back.
    PublishOnly,
}

/// Orchestrator settings.
#[derive(Debug, Clone, Copy)]
pub struct OrchestratorConfig {
    /// Training configuration used for retrains.
    pub train: TrainConfig,
    /// Minimum majority-cluster accuracy a candidate model must reach on
    /// its own training window to be published (the §6.6 quality bar).
    pub min_accuracy: f64,
    /// How many registry versions to retain after a publish.
    pub keep_versions: usize,
    /// Whether a validated candidate is swapped into this server or only
    /// published for a fleet rollout to distribute.
    pub swap: SwapPolicy,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig::default(),
            min_accuracy: 0.98,
            keep_versions: 4,
            swap: SwapPolicy::PublishAndSwap,
        }
    }
}

/// What a checkpoint did.
#[derive(Debug)]
pub enum RetrainOutcome {
    /// No drift; the serving model stays.
    Stable {
        /// The per-release measurements of the checkpoint.
        observations: Vec<DriftObservation>,
    },
    /// Drift detected; a new model was trained, validated, published and
    /// swapped in.
    Retrained {
        /// The releases that triggered the retrain.
        triggers: Vec<UserAgent>,
        /// The registry version of the new model.
        version: u64,
        /// The new model's training accuracy.
        accuracy: f64,
    },
    /// Drift detected, but the candidate model failed validation; the old
    /// model keeps serving and the condition should be investigated.
    RetrainRejected {
        /// The releases that triggered the retrain attempt.
        triggers: Vec<UserAgent>,
        /// The rejected candidate's accuracy.
        accuracy: f64,
    },
    /// Drift detected but the retrain window itself was unusable (too
    /// few rows, width mismatch — a corrupt collection run). Instead of
    /// erroring out of the checkpoint, the orchestrator re-asserted the
    /// last-good model from the registry so the serving detector is in a
    /// known-published state, and reports the failure for investigation.
    Fallback {
        /// The releases that triggered the retrain attempt.
        triggers: Vec<UserAgent>,
        /// The registry version swapped back in, or `None` when the
        /// registry holds no loadable model (the in-memory detector then
        /// keeps serving unchanged).
        version: Option<u64>,
        /// The retrain error, stringified for the operator.
        error: String,
    },
}

/// Errors from a checkpoint run.
#[derive(Debug)]
pub enum OrchestratorError {
    /// Pipeline error (drift measurement or training).
    Pipeline(PolygraphError),
    /// Registry I/O error.
    Registry(io::Error),
}

impl std::fmt::Display for OrchestratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrchestratorError::Pipeline(e) => write!(f, "pipeline: {e}"),
            OrchestratorError::Registry(e) => write!(f, "registry: {e}"),
        }
    }
}

impl std::error::Error for OrchestratorError {}

impl From<PolygraphError> for OrchestratorError {
    fn from(e: PolygraphError) -> Self {
        OrchestratorError::Pipeline(e)
    }
}
impl From<io::Error> for OrchestratorError {
    fn from(e: io::Error) -> Self {
        OrchestratorError::Registry(e)
    }
}

/// Drives drift checkpoints against a serving risk server.
pub struct Orchestrator<'s> {
    server: &'s RiskServerHandle,
    registry: ModelRegistry,
    config: OrchestratorConfig,
}

impl<'s> Orchestrator<'s> {
    /// Creates an orchestrator for `server`, persisting models in
    /// `registry`.
    pub fn new(
        server: &'s RiskServerHandle,
        registry: ModelRegistry,
        config: OrchestratorConfig,
    ) -> Self {
        Self {
            server,
            registry,
            config,
        }
    }

    /// The registry this orchestrator publishes to.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Runs one checkpoint: measure `releases` over `fresh` traffic; on
    /// drift, retrain on `fresh`, validate, publish and swap.
    pub fn checkpoint(
        &self,
        fresh: &TrainingSet,
        releases: &[UserAgent],
    ) -> Result<RetrainOutcome, OrchestratorError> {
        let obs = self.server.registry();
        obs.counter(metric_names::CHECKPOINTS).inc();

        // Measure against the *currently serving* model. The model is
        // cloned out of the detector slot so the read guard is released
        // before the checkpoint measurement runs — holding it across
        // `DriftDetector::checkpoint` (a full re-clustering pass over the
        // fresh window) would starve `swap_detector` and block serving
        // writers for the whole measurement (POLY-L002).
        let serving_model = {
            let slot = self.server.detector_slot();
            let guard = slot.read();
            guard.model().clone()
        };
        let (observations, decision) = {
            let monitor = DriftDetector::new(&serving_model);
            monitor.checkpoint(fresh, releases)?
        };
        obs.counter(metric_names::DRIFT_EVALUATIONS)
            .add(observations.len() as u64);

        let triggers = match decision {
            DriftDecision::Stable => return Ok(RetrainOutcome::Stable { observations }),
            DriftDecision::Retrain { triggers } => triggers,
        };

        // Retrain on the fresh window with the serving feature schema.
        // The fit records its per-phase timings (`fit.*`) into the
        // server's registry; this span wraps the whole fit-to-swap path.
        // Reuse the measured model's schema rather than re-reading the
        // slot: if a concurrent swap landed mid-checkpoint, retraining
        // against the schema that produced `decision` stays coherent.
        let retrain_span = obs.span(metric_names::RETRAIN_MICROS);
        let feature_set = serving_model.feature_set().clone();
        let candidate = match TrainedModel::fit_observed(
            feature_set,
            fresh,
            self.config.train,
            &ThreadPool::serial(),
            &obs,
        ) {
            Ok(candidate) => candidate,
            Err(err) => {
                // A corrupt retrain window must not take the checkpoint
                // loop down. Re-assert the last-good *published* model
                // (which `load_latest_versioned` guarantees is intact)
                // so serving state is reproducible from the registry,
                // then surface the failure as an outcome, not an error.
                retrain_span.cancel();
                obs.counter(metric_names::FALLBACKS).inc();
                let version = match self.registry.load_latest_versioned()? {
                    Some((version, last_good)) => {
                        // Under `PublishOnly` the serving model belongs
                        // to the fleet rollout — re-asserting last-good
                        // here would swap behind its back.
                        if self.config.swap == SwapPolicy::PublishAndSwap {
                            self.server.publish_model(last_good);
                        }
                        Some(version)
                    }
                    None => None,
                };
                return Ok(RetrainOutcome::Fallback {
                    triggers,
                    version,
                    error: err.to_string(),
                });
            }
        };
        let accuracy = candidate.train_accuracy();
        if accuracy < self.config.min_accuracy {
            obs.counter(metric_names::RETRAINS_REJECTED).inc();
            return Ok(RetrainOutcome::RetrainRejected { triggers, accuracy });
        }

        let version = self.registry.publish(&candidate)?;
        obs.counter(metric_names::REGISTRY_PUBLISHES).inc();
        self.registry.prune(self.config.keep_versions)?;
        if self.config.swap == SwapPolicy::PublishAndSwap {
            self.server.publish_model(candidate);
        }
        obs.counter(metric_names::RETRAINS).inc();
        retrain_span.finish();
        Ok(RetrainOutcome::Retrained {
            triggers,
            version,
            accuracy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::start_risk_server;
    use browser_engine::Vendor;
    use fingerprint::FeatureSet;
    use polygraph_core::Detector;

    fn ua(vendor: Vendor, v: u32) -> UserAgent {
        UserAgent::new(vendor, v)
    }

    /// Era A at (0,0) for Chrome 100, era B at (10,10) for Chrome 110.
    fn training(base_a: f64) -> TrainingSet {
        let mut set = TrainingSet::new(2);
        for (base, u) in [
            (base_a, ua(Vendor::Chrome, 100)),
            (10.0, ua(Vendor::Chrome, 110)),
        ] {
            for j in 0..60 {
                set.push(vec![base + (j % 3) as f64 * 0.05, base], u)
                    .unwrap();
            }
        }
        set
    }

    fn config() -> OrchestratorConfig {
        OrchestratorConfig {
            train: TrainConfig {
                k: 2,
                n_components: 2,
                min_samples_for_majority: 1,
                ..Default::default()
            },
            min_accuracy: 0.95,
            keep_versions: 2,
            swap: SwapPolicy::PublishAndSwap,
        }
    }

    fn temp_registry(tag: &str) -> ModelRegistry {
        let dir =
            std::env::temp_dir().join(format!("polygraph-orch-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ModelRegistry::open(&dir).unwrap()
    }

    fn serving_model() -> TrainedModel {
        let fs = FeatureSet::table8().subset(&[0, 1]);
        TrainedModel::fit(fs, &training(0.0), config().train).unwrap()
    }

    #[test]
    fn stable_checkpoint_keeps_the_model() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let orch = Orchestrator::new(&server, temp_registry("stable"), config());
        // Chrome 111 ships with era-B features: stable.
        let mut fresh = training(0.0);
        for _ in 0..60 {
            fresh
                .push(vec![10.0, 10.0], ua(Vendor::Chrome, 111))
                .unwrap();
        }
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        assert!(matches!(outcome, RetrainOutcome::Stable { .. }));
        assert_eq!(server.stats().swaps, 0);
        assert_eq!(orch.registry().versions().unwrap(), Vec::<u64>::new());
        server.shutdown();
    }

    /// Regression for the POLY-L002 dogfooding fix: `checkpoint` must
    /// release the detector-slot read guard before the drift measurement
    /// runs (it clones the model out), so a writer — `swap_detector` —
    /// can take the slot while a measurement is in flight. Before the
    /// fix, the guard spanned the whole measurement and every
    /// `try_write` below would fail until the checkpoint finished.
    #[test]
    fn checkpoint_releases_the_detector_slot_before_measuring() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let orch = Orchestrator::new(&server, temp_registry("guard-scope"), config());
        // A large stable window: the measurement runs long enough for
        // the main thread to probe the slot, and Stable means no swap
        // interferes with the probe.
        let mut fresh = training(0.0);
        for j in 0..20_000 {
            fresh
                .push(
                    vec![10.0 + (j % 3) as f64 * 0.05, 10.0],
                    ua(Vendor::Chrome, 111),
                )
                .unwrap();
        }
        let checkpoints = server.registry().counter(metric_names::CHECKPOINTS);
        let done = AtomicBool::new(false);
        let acquired_mid_checkpoint = std::thread::scope(|scope| {
            scope.spawn(|| {
                let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
                assert!(matches!(outcome, RetrainOutcome::Stable { .. }));
                done.store(true, Ordering::SeqCst);
            });
            // Wait for the checkpoint to begin …
            while checkpoints.get() == 0 && !done.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            // … then take a write lock on the slot mid-measurement.
            let slot = server.detector_slot();
            let mut acquired = false;
            while !done.load(Ordering::SeqCst) {
                if let Some(guard) = slot.try_write() {
                    drop(guard);
                    acquired = true;
                    break;
                }
                std::thread::yield_now();
            }
            acquired
        });
        assert!(
            acquired_mid_checkpoint,
            "a writer must be able to take the detector slot while a drift \
             measurement is running"
        );
        server.shutdown();
    }

    /// Under `SwapPolicy::PublishOnly` a drift-triggered retrain still
    /// validates and publishes, but the serving detector is left to the
    /// fleet rollout: zero swaps, version in the registry.
    #[test]
    fn publish_only_checkpoint_publishes_without_swapping() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let registry = temp_registry("publish-only");
        let orch = Orchestrator::new(
            &server,
            registry,
            OrchestratorConfig {
                swap: SwapPolicy::PublishOnly,
                ..config()
            },
        );
        let mut fresh = training(0.0);
        for j in 0..80 {
            fresh
                .push(
                    vec![-0.5 + (j % 3) as f64 * 0.05, -0.5],
                    ua(Vendor::Chrome, 111),
                )
                .unwrap();
        }
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        assert!(matches!(
            outcome,
            RetrainOutcome::Retrained { version: 1, .. }
        ));
        assert_eq!(
            server.stats().swaps,
            0,
            "publish-only must not touch the serving detector"
        );
        assert_eq!(orch.registry().versions().unwrap(), vec![1]);
        server.shutdown();
    }

    #[test]
    fn drift_triggers_retrain_publish_and_swap() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let registry = temp_registry("retrain");
        let orch = Orchestrator::new(&server, registry, config());
        // Chrome 111 ships with a shape back near era A: its sessions land
        // in Chrome 100's cluster instead of its predecessor's — drift.
        let mut fresh = training(0.0);
        for j in 0..80 {
            fresh
                .push(
                    vec![-0.5 + (j % 3) as f64 * 0.05, -0.5],
                    ua(Vendor::Chrome, 111),
                )
                .unwrap();
        }
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        match outcome {
            RetrainOutcome::Retrained {
                triggers,
                version,
                accuracy,
            } => {
                assert_eq!(triggers, vec![ua(Vendor::Chrome, 111)]);
                assert_eq!(version, 1);
                assert!(accuracy > 0.95);
            }
            other => panic!("expected retrain, got {other:?}"),
        }
        assert_eq!(server.stats().swaps, 1);
        // The published model is loadable and knows the new release.
        let restored = orch.registry().load_latest().unwrap().expect("published");
        assert!(restored
            .cluster_table()
            .cluster_of(ua(Vendor::Chrome, 111))
            .is_some());
        // And the serving detector now accepts the new shape.
        let slot = server.detector_slot();
        let verdict = slot
            .read()
            .assess(&[-0.5, -0.5], ua(Vendor::Chrome, 111))
            .unwrap();
        assert!(!verdict.flagged, "after the swap the new shape is known");
        server.shutdown();
    }

    #[test]
    fn failed_validation_keeps_the_old_model() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let mut cfg = config();
        cfg.min_accuracy = 1.1; // impossible bar
        let orch = Orchestrator::new(&server, temp_registry("reject"), cfg);
        let mut fresh = training(0.0);
        for _ in 0..80 {
            fresh
                .push(vec![-0.5, -0.5], ua(Vendor::Chrome, 111))
                .unwrap();
        }
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        assert!(matches!(outcome, RetrainOutcome::RetrainRejected { .. }));
        assert_eq!(server.stats().swaps, 0);
        assert!(orch.registry().versions().unwrap().is_empty());
        server.shutdown();
    }

    /// Drift plus an unusable retrain window: `k` far exceeds the rows in
    /// the fresh set, so `fit_observed` errors after drift has already
    /// fired — the corrupt-collection-run scenario.
    fn drifting_but_unfittable() -> (TrainingSet, OrchestratorConfig) {
        let mut fresh = training(0.0);
        for _ in 0..80 {
            fresh
                .push(vec![-0.5, -0.5], ua(Vendor::Chrome, 111))
                .unwrap();
        }
        let mut cfg = config();
        cfg.train.k = 10_000;
        (fresh, cfg)
    }

    #[test]
    fn corrupt_window_falls_back_to_last_good_registry_model() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let registry = temp_registry("fallback");
        // Seed the registry with a known-good published model.
        let last_good = serving_model();
        registry.publish(&last_good).unwrap();
        let (fresh, cfg) = drifting_but_unfittable();
        let orch = Orchestrator::new(&server, registry, cfg);
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        match outcome {
            RetrainOutcome::Fallback {
                triggers,
                version,
                error,
            } => {
                assert_eq!(triggers, vec![ua(Vendor::Chrome, 111)]);
                assert_eq!(version, Some(1));
                assert!(error.contains("cannot support k="), "got: {error}");
            }
            other => panic!("expected fallback, got {other:?}"),
        }
        assert_eq!(server.stats().swaps, 1, "last-good model was re-asserted");
        // The serving detector is the registry model, not a half-trained
        // candidate: known shapes still assess cleanly.
        let slot = server.detector_slot();
        let verdict = slot
            .read()
            .assess(&[0.0, 0.0], ua(Vendor::Chrome, 100))
            .unwrap();
        assert!(!verdict.flagged);
        server.shutdown();
    }

    #[test]
    fn fallback_with_empty_registry_keeps_serving_in_memory_model() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let (fresh, cfg) = drifting_but_unfittable();
        let orch = Orchestrator::new(&server, temp_registry("fallback-empty"), cfg);
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        match outcome {
            RetrainOutcome::Fallback { version, .. } => assert_eq!(version, None),
            other => panic!("expected fallback, got {other:?}"),
        }
        assert_eq!(server.stats().swaps, 0, "nothing to fall back to: no swap");
        server.shutdown();
    }
}
