//! End-to-end tests of the polygraph-lint pass, driven in-process against
//! the bad/good fixtures under `tests/lint_fixtures/` and against the real
//! workspace (which must stay clean).

use std::path::{Path, PathBuf};
use xtask::{lint_workspace, LintConfig};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures")
}

/// A config whose zones match the fixture naming scheme instead of the
/// real workspace layout.
fn fixture_config() -> LintConfig {
    let mut config = LintConfig::default();
    config
        .apply_toml(
            r#"
[scan]
exclude = []

[zones]
determinism = ["det_", "reactor_"]
key_determinism = ["keys_"]
panic_safety = ["panic_", "reactor_"]
"#,
        )
        .expect("fixture config parses");
    config
}

fn run_fixtures(config: &LintConfig) -> xtask::LintReport {
    lint_workspace(&fixtures_root(), config).expect("fixture scan succeeds")
}

#[test]
fn bad_fixtures_fire_every_rule_at_the_expected_lines() {
    let report = run_fixtures(&fixture_config());
    let got: Vec<(String, String, u32)> = report
        .diagnostics
        .iter()
        .map(|d| (d.file.clone(), d.rule.to_string(), d.line))
        .collect();
    let expected: Vec<(&str, &str, u32)> = vec![
        ("det_bad.rs", "POLY-D001", 4),         // use HashMap
        ("det_bad.rs", "POLY-D001", 5),         // use HashSet
        ("det_bad.rs", "POLY-D001", 8),         // HashMap::new()
        ("det_bad.rs", "POLY-D002", 9),         // Instant::now()
        ("det_bad.rs", "POLY-D002", 10),        // thread_rng()
        ("det_bad.rs", "POLY-D002", 11),        // from_entropy
        ("det_bad.rs", "POLY-D003", 11),        // StdRng
        ("keys_bad.rs", "POLY-D004", 4),        // use RandomState
        ("keys_bad.rs", "POLY-D004", 5),        // use DefaultHasher
        ("keys_bad.rs", "POLY-D004", 8),        // RandomState::new()
        ("keys_bad.rs", "POLY-D004", 9),        // DefaultHasher::new()
        ("panic_bad.rs", "POLY-P004", 5),       // frame[0]
        ("panic_bad.rs", "POLY-P001", 6),       // unwrap()
        ("panic_bad.rs", "POLY-P002", 7),       // expect(…)
        ("panic_bad.rs", "POLY-P003", 8),       // panic!
        ("reactor_bad.rs", "POLY-D002", 6),     // Instant::now() in the poll loop
        ("reactor_bad.rs", "POLY-P004", 7),     // events[0]
        ("reactor_bad.rs", "POLY-P001", 8),     // unwrap()
        ("src/hygiene_bad.rs", "POLY-H002", 4), // println!
        ("src/hygiene_bad.rs", "POLY-H001", 5), // unsafe
        ("src/pool_bad.rs", "POLY-H003", 3),    // missing serial twin
    ];
    let expected: Vec<(String, String, u32)> = expected
        .into_iter()
        .map(|(f, r, l)| (f.to_string(), r.to_string(), l))
        .collect();
    assert_eq!(got, expected, "\nfull report:\n{}", report.render_text());
}

#[test]
fn good_fixtures_are_clean() {
    let report = run_fixtures(&fixture_config());
    for clean in [
        "det_good.rs",
        "keys_good.rs",
        "panic_good.rs",
        "src/pool_good.rs",
    ] {
        assert!(
            report.diagnostics.iter().all(|d| d.file != clean),
            "{clean} should be clean:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn allow_entry_suppresses_exactly_one_diagnostic() {
    let mut config = fixture_config();
    config
        .apply_toml(
            r#"
[[allow]]
rule = "POLY-P004"
file = "panic_bad.rs"
line = 5
reason = "fixture test: index is bounds-checked by construction"
"#,
        )
        .expect("allow entry parses");
    let baseline = run_fixtures(&fixture_config());
    let report = run_fixtures(&config);
    assert_eq!(report.suppressed, 1);
    assert_eq!(report.diagnostics.len(), baseline.diagnostics.len() - 1);
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| !(d.rule == "POLY-P004" && d.file == "panic_bad.rs")),
        "the allowed diagnostic must be gone:\n{}",
        report.render_text()
    );
    assert!(report.unused_allows.is_empty());
}

#[test]
fn stale_allow_entries_are_flagged_not_silently_ignored() {
    let mut config = fixture_config();
    config
        .apply_toml(
            r#"
[[allow]]
rule = "POLY-P001"
file = "det_good.rs"
reason = "stale: this was fixed long ago"
"#,
        )
        .expect("allow entry parses");
    let report = run_fixtures(&config);
    assert_eq!(report.unused_allows.len(), 1);
    assert_eq!(report.unused_allows[0].file, "det_good.rs");
    assert!(report.render_text().contains("unused allow entry"));
}

#[test]
fn json_report_is_deterministic_and_carries_positions() {
    let a = run_fixtures(&fixture_config()).render_json();
    let b = run_fixtures(&fixture_config()).render_json();
    assert_eq!(a, b, "same input must render byte-identical JSON");
    assert!(a.contains("\"rule\": \"POLY-P001\""));
    assert!(a.contains("\"file\": \"panic_bad.rs\""));
    assert!(a.contains("\"line\": 6"));
    assert!(!a.contains("timestamp"));
}

/// The real workspace must be lint-clean under the committed `lint.toml`
/// — the same invocation CI runs as `cargo xtask lint`.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut config = LintConfig::default();
    let lint_toml = root.join("lint.toml");
    if let Ok(text) = std::fs::read_to_string(&lint_toml) {
        config
            .apply_toml(&text)
            .expect("committed lint.toml parses");
    }
    let report = lint_workspace(&root, &config).expect("workspace scan succeeds");
    assert!(
        report.is_clean(),
        "the workspace must pass its own lint:\n{}",
        report.render_text()
    );
    assert!(
        report.unused_allows.is_empty(),
        "committed lint.toml has stale allow entries:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 50, "scan looks truncated");
}
