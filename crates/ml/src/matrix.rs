//! Dense row-major matrix with the column statistics the pipeline needs.
//!
//! This is intentionally a *small* matrix type: the Polygraph pipeline works
//! on datasets of a few hundred thousand rows by a few dozen columns, so a
//! contiguous `Vec<f64>` with straightforward loops is both simple and fast
//! enough. No BLAS, no SIMD tricks.

use crate::error::MlError;
use crate::pool::{ThreadPool, ROW_CHUNK};
use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// Returns [`MlError::DimensionMismatch`] if `data.len() != rows * cols`
    /// and [`MlError::EmptyInput`] if either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MlError> {
        if rows == 0 || cols == 0 {
            return Err(MlError::EmptyInput);
        }
        if data.len() != rows * cols {
            return Err(MlError::DimensionMismatch {
                got: data.len(),
                expected: rows * cols,
                what: "buffer length",
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally-long rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MlError> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(MlError::EmptyInput);
        }
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(MlError::EmptyInput);
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(MlError::DimensionMismatch {
                    got: r.len(),
                    expected: ncols,
                    what: "row length",
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, MlError> {
        if rows == 0 || cols == 0 {
            return Err(MlError::EmptyInput);
        }
        Ok(Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Result<Self, MlError> {
        let mut m = Self::zeros(n, n)?;
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        Ok(m)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "column index {c} out of bounds ({})",
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix {
            rows: self.cols,
            cols: self.rows,
            data: vec![0.0; self.data.len()],
        };
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, MlError> {
        if self.cols != other.rows {
            return Err(MlError::DimensionMismatch {
                got: other.rows,
                expected: self.cols,
                what: "inner dimension",
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols)?;
        // (i,k)-(k,j) loop order keeps the inner loop contiguous in both
        // `other` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Per-column means.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Per-column population standard deviations.
    pub fn col_stds(&self) -> Vec<f64> {
        let means = self.col_means();
        let mut vars = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for ((v, &x), &m) in vars.iter_mut().zip(row).zip(&means) {
                let d = x - m;
                *v += d * d;
            }
        }
        let n = self.rows as f64;
        vars.iter().map(|v| (v / n).sqrt()).collect()
    }

    /// Sample covariance matrix of the columns (divides by `n - 1`; by `n`
    /// when there is a single row).
    pub fn covariance(&self) -> Result<Matrix, MlError> {
        self.covariance_with_pool(&ThreadPool::serial())
    }

    /// [`Matrix::covariance`] on a thread pool.
    ///
    /// Rows are split into fixed [`ROW_CHUNK`] blocks; each block
    /// accumulates its own upper-triangular partial, and the partials are
    /// folded in block order. Because the block boundaries depend only on
    /// the data (not the pool width), the result is bit-identical on any
    /// thread count, including the serial path.
    pub fn covariance_with_pool(&self, pool: &ThreadPool) -> Result<Matrix, MlError> {
        let means = self.col_means();
        let denom = if self.rows > 1 {
            (self.rows - 1) as f64
        } else {
            1.0
        };
        let cols = self.cols;
        let partials = pool.run_chunks(self.rows, ROW_CHUNK, |lo, hi| {
            let mut acc = vec![0.0f64; cols * cols];
            for r in lo..hi {
                let row = self.row(r);
                for i in 0..cols {
                    let di = row[i] - means[i];
                    if di == 0.0 {
                        continue;
                    }
                    for j in i..cols {
                        acc[i * cols + j] += di * (row[j] - means[j]);
                    }
                }
            }
            acc
        });
        let mut cov = Matrix::zeros(cols, cols)?;
        for acc in partials {
            for (c, a) in cov.data.iter_mut().zip(&acc) {
                *c += a;
            }
        }
        for i in 0..cols {
            for j in i..cols {
                cov[(i, j)] /= denom;
                cov[(j, i)] = cov[(i, j)];
            }
        }
        Ok(cov)
    }

    /// All-pairs squared Euclidean distances between the rows of `self` and
    /// the rows of `other`: entry `(i, j)` is `sq_dist(self.row(i),
    /// other.row(j))`.
    ///
    /// Each output row depends only on one input row, so the kernel chunks
    /// rows of `self` across the pool and is trivially bit-identical to the
    /// serial evaluation.
    pub fn pairwise_sq_dists(&self, other: &Matrix, pool: &ThreadPool) -> Result<Matrix, MlError> {
        if self.cols != other.cols {
            return Err(MlError::DimensionMismatch {
                got: other.cols,
                expected: self.cols,
                what: "columns",
            });
        }
        let blocks = pool.run_chunks(self.rows, ROW_CHUNK, |lo, hi| {
            let mut block = Vec::with_capacity((hi - lo) * other.rows);
            for r in lo..hi {
                let row = self.row(r);
                for o in other.iter_rows() {
                    block.push(Self::sq_dist(row, o));
                }
            }
            block
        });
        let mut data = Vec::with_capacity(self.rows * other.rows);
        for block in blocks {
            data.extend_from_slice(&block);
        }
        Matrix::from_vec(self.rows, other.rows, data)
    }

    /// Returns a new matrix keeping only the rows whose index satisfies
    /// `keep`.
    pub fn filter_rows(&self, keep: impl Fn(usize) -> bool) -> Result<Matrix, MlError> {
        let rows: Vec<Vec<f64>> = self
            .iter_rows()
            .enumerate()
            .filter(|(i, _)| keep(*i))
            .map(|(_, r)| r.to_vec())
            .collect();
        Matrix::from_rows(&rows)
    }

    /// Returns a new matrix keeping only the listed columns, in order.
    pub fn select_columns(&self, cols: &[usize]) -> Result<Matrix, MlError> {
        if cols.is_empty() {
            return Err(MlError::EmptyInput);
        }
        for &c in cols {
            if c >= self.cols {
                return Err(MlError::DimensionMismatch {
                    got: c,
                    expected: self.cols,
                    what: "column index",
                });
            }
        }
        let mut data = Vec::with_capacity(self.rows * cols.len());
        for row in self.iter_rows() {
            for &c in cols {
                data.push(row[c]);
            }
        }
        Matrix::from_vec(self.rows, cols.len(), data)
    }

    /// Squared Euclidean distance between two equal-length slices.
    ///
    /// A free function on slices rather than rows so that callers holding
    /// plain vectors (e.g. centroids) can use it too.
    #[inline]
    pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn from_vec_validates_dimensions() {
        assert_eq!(Matrix::from_vec(0, 3, vec![]), Err(MlError::EmptyInput));
        assert_eq!(Matrix::from_vec(2, 0, vec![]), Err(MlError::EmptyInput));
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(MlError::DimensionMismatch { .. })
        ));
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            Matrix::from_rows(&rows),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn indexing_round_trips() {
        let mut a = Matrix::zeros(2, 3).unwrap();
        a[(1, 2)] = 5.0;
        assert_eq!(a[(1, 2)], 5.0);
        assert_eq!(a.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(a.col(2), vec![0.0, 5.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2).unwrap();
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dimension() {
        let a = Matrix::zeros(2, 3).unwrap();
        let b = Matrix::zeros(2, 2).unwrap();
        assert!(matches!(
            a.matmul(&b),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn col_means_and_stds() {
        let a = m(&[&[1.0, 10.0], &[3.0, 10.0]]);
        assert_eq!(a.col_means(), vec![2.0, 10.0]);
        let stds = a.col_stds();
        assert!((stds[0] - 1.0).abs() < 1e-12);
        assert_eq!(stds[1], 0.0);
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        // y = 2x => cov(x,y) = 2*var(x)
        let a = m(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let cov = a.covariance().unwrap();
        assert!((cov[(0, 0)] - 1.0).abs() < 1e-12); // sample var of 1,2,3
        assert!((cov[(0, 1)] - 2.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0).abs() < 1e-12);
        assert_eq!(cov[(0, 1)], cov[(1, 0)]);
    }

    #[test]
    fn select_columns_reorders() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let s = a.select_columns(&[2, 0]).unwrap();
        assert_eq!(s, m(&[&[3.0, 1.0], &[6.0, 4.0]]));
        assert!(s.select_columns(&[]).is_err());
        assert!(a.select_columns(&[3]).is_err());
    }

    #[test]
    fn filter_rows_keeps_matching() {
        let a = m(&[&[1.0], &[2.0], &[3.0]]);
        let f = a.filter_rows(|i| i != 1).unwrap();
        assert_eq!(f, m(&[&[1.0], &[3.0]]));
    }

    #[test]
    fn sq_dist_basic() {
        assert_eq!(Matrix::sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(Matrix::sq_dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn pool_covariance_matches_serial_bit_for_bit() {
        // Span more than one ROW_CHUNK so the fold actually crosses chunks.
        let rows: Vec<Vec<f64>> = (0..(ROW_CHUNK + 300))
            .map(|i| {
                let v = (i as f64).sin() * 10.0;
                vec![v, v * 0.5 + 1.0, (i % 7) as f64]
            })
            .collect();
        let a = Matrix::from_rows(&rows).unwrap();
        let serial = a.covariance().unwrap();
        for threads in [2, 8] {
            let par = a.covariance_with_pool(&ThreadPool::new(threads)).unwrap();
            for (s, p) in serial.as_slice().iter().zip(par.as_slice()) {
                assert_eq!(s.to_bits(), p.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn pairwise_sq_dists_match_direct_evaluation() {
        let a = m(&[&[0.0, 0.0], &[1.0, 1.0], &[3.0, 4.0]]);
        let b = m(&[&[0.0, 0.0], &[-1.0, 0.0]]);
        let serial = a.pairwise_sq_dists(&b, &ThreadPool::serial()).unwrap();
        assert_eq!(serial.rows(), 3);
        assert_eq!(serial.cols(), 2);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(serial[(i, j)], Matrix::sq_dist(a.row(i), b.row(j)));
            }
        }
        let par = a.pairwise_sq_dists(&b, &ThreadPool::new(4)).unwrap();
        assert_eq!(serial, par);
        let bad = Matrix::zeros(2, 3).unwrap();
        assert!(a.pairwise_sq_dists(&bad, &ThreadPool::serial()).is_err());
    }

    proptest! {
        #[test]
        fn prop_transpose_twice_is_identity(
            rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()
        ) {
            let data: Vec<f64> = (0..rows * cols)
                .map(|i| ((seed.wrapping_add(i as u64).wrapping_mul(2654435761)) % 1000) as f64)
                .collect();
            let a = Matrix::from_vec(rows, cols, data).unwrap();
            prop_assert_eq!(a.transpose().transpose(), a);
        }

        #[test]
        fn prop_matmul_associative_with_identity(
            n in 1usize..6, vals in proptest::collection::vec(-100.0f64..100.0, 1..36)
        ) {
            let mut data = vals;
            data.resize(n * n, 1.0);
            let a = Matrix::from_vec(n, n, data).unwrap();
            let i = Matrix::identity(n).unwrap();
            prop_assert_eq!(a.matmul(&i).unwrap(), a.clone());
        }

        #[test]
        fn prop_covariance_is_symmetric_psd_diagonal(
            rows in 2usize..12, cols in 1usize..6,
            vals in proptest::collection::vec(-50.0f64..50.0, 2..72)
        ) {
            let mut data = vals;
            data.resize(rows * cols, 0.0);
            let a = Matrix::from_vec(rows, cols, data).unwrap();
            let cov = a.covariance().unwrap();
            for i in 0..cols {
                prop_assert!(cov[(i, i)] >= -1e-9, "diagonal must be non-negative");
                for j in 0..cols {
                    prop_assert!((cov[(i, j)] - cov[(j, i)]).abs() < 1e-9);
                }
            }
        }

        #[test]
        fn prop_sq_dist_nonnegative_and_zero_iff_equal(
            a in proptest::collection::vec(-1e3f64..1e3, 1..16)
        ) {
            prop_assert_eq!(Matrix::sq_dist(&a, &a), 0.0);
            let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
            prop_assert!(Matrix::sq_dist(&a, &b) > 0.0);
        }
    }
}
