//! The fingerprint submission wire format.
//!
//! FinOrg's deployment constraints (§3) cap the per-user payload at 1 KB.
//! The format below keeps even the full 513-probe collection payload under
//! that budget:
//!
//! ```text
//! +------+-----+------------------+---------+-----------+--------------+
//! | "BP" | ver | session id (16B) | ua-len  | ua bytes  | LEB128 vals  |
//! | 2 B  | 1 B |                  | u16 LE  | ≤ 512 B   | count + data |
//! +------+-----+------------------+---------+-----------+--------------+
//! ```
//!
//! Values are LEB128 varints: property counts are small integers, so the
//! common case is one byte per feature. Encoding is infallible for valid
//! submissions; decoding validates every field and never panics on
//! malformed input — this is the parser that faces the network.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Hard cap on an encoded submission, from the paper's §3 requirement.
pub const MAX_SUBMISSION_BYTES: usize = 1024;

/// Wire format version this library writes.
pub const WIRE_VERSION: u8 = 1;

/// Magic prefix of every submission frame.
pub const MAGIC: [u8; 2] = *b"BP";

/// Maximum user-agent string length accepted on decode.
pub const MAX_UA_LEN: usize = 512;

/// Maximum number of feature values accepted on decode.
pub const MAX_VALUES: usize = 1024;

/// Magic prefix of a `STATS` request frame (disjoint from the submission
/// [`MAGIC`], so the two request kinds can share one length-prefixed
/// stream).
pub const STATS_MAGIC: [u8; 2] = *b"BS";

/// Encoded size of a `STATS` request body.
pub const STATS_REQUEST_LEN: usize = 3;

/// Encodes a `STATS` request: asks the risk server for a metrics
/// snapshot instead of a verdict. Sent inside the same u16-length-prefixed
/// framing as submissions.
pub fn encode_stats_request() -> [u8; STATS_REQUEST_LEN] {
    let [m0, m1] = STATS_MAGIC;
    [m0, m1, WIRE_VERSION]
}

/// Whether a request frame body is a `STATS` request.
pub fn is_stats_request(frame: &[u8]) -> bool {
    matches!(frame, [m0, m1, v] if [*m0, *m1] == STATS_MAGIC && *v == WIRE_VERSION)
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hand-rolled FNV-1a over `bytes`: a fixed, platform-independent 64-bit
/// hash. The verdict cache keys on this — never on `RandomState` — so
/// the same frame maps to the same cache slot in every process and every
/// replay (lint rule POLY-D004 pins the invariant).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The deterministic cache key of a submission frame, or `None` when the
/// frame cannot be a submission (wrong magic/version, or too short to
/// carry a session id) — such frames are not worth caching.
///
/// The key hashes the frame's *session-invariant* canonical suffix: the
/// encoded `(ua_len ‖ user-agent ‖ value-count ‖ LEB128 values)` bytes,
/// **excluding** the 16-byte session id. Two sessions submitting the same
/// (fingerprint, user-agent) pair therefore share one key — the coarse
/// fingerprint population is exactly what makes a verdict cache pay at
/// FinOrg scale — while the verdict itself never depends on the session
/// id. Because [`encode_submission`] is canonical (one byte sequence per
/// submission), equal keys mean equal suffix bytes up to 64-bit FNV-1a
/// collisions; see DESIGN.md §5g for the collision budget.
pub fn submission_cache_key(frame: &[u8]) -> Option<u64> {
    match frame {
        [m0, m1, v, rest @ ..] if [*m0, *m1] == MAGIC && *v == WIRE_VERSION && rest.len() >= 16 => {
            rest.get(16..).map(fnv1a64)
        }
        _ => None,
    }
}

/// A fingerprint submission: what the in-page script sends to the
/// collection endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Submission {
    /// Opaque anonymised session identifier (Appendix A: "completely
    /// opaque and randomized").
    pub session_id: [u8; 16],
    /// The raw `navigator.userAgent` string as claimed by the browser.
    pub user_agent: String,
    /// The probe outputs, in feature-set order.
    pub values: Vec<u32>,
}

/// Errors produced when decoding a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame shorter than its declared contents.
    Truncated,
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported wire version.
    UnsupportedVersion(u8),
    /// User-agent length exceeds [`MAX_UA_LEN`].
    UserAgentTooLong(usize),
    /// User-agent bytes are not valid UTF-8.
    UserAgentNotUtf8,
    /// Value count exceeds [`MAX_VALUES`].
    TooManyValues(usize),
    /// A varint ran past 5 bytes (would overflow u32).
    VarintOverflow,
    /// Trailing bytes after the declared contents.
    TrailingBytes(usize),
    /// An encoded submission would exceed [`MAX_SUBMISSION_BYTES`].
    OverBudget(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic => write!(f, "bad magic"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UserAgentTooLong(n) => {
                write!(f, "user-agent length {n} exceeds {MAX_UA_LEN}")
            }
            WireError::UserAgentNotUtf8 => write!(f, "user-agent is not valid UTF-8"),
            WireError::TooManyValues(n) => write!(f, "value count {n} exceeds {MAX_VALUES}"),
            WireError::VarintOverflow => write!(f, "varint overflows u32"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
            WireError::OverBudget(n) => {
                write!(
                    f,
                    "encoded size {n} exceeds the {MAX_SUBMISSION_BYTES}-byte budget"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a submission. Fails only when the result would blow the 1 KB
/// budget or a field exceeds its cap.
///
/// ```
/// use fingerprint::{decode_submission, encode_submission, Submission};
///
/// let sub = Submission {
///     session_id: [7u8; 16],
///     user_agent: "Mozilla/5.0 ... Chrome/112.0.0.0".into(),
///     values: vec![330, 270, 106, 1, 0, 1],
/// };
/// let frame = encode_submission(&sub).unwrap();
/// assert!(frame.len() <= fingerprint::MAX_SUBMISSION_BYTES);
/// assert_eq!(decode_submission(&frame).unwrap(), sub);
/// ```
pub fn encode_submission(sub: &Submission) -> Result<Bytes, WireError> {
    if sub.user_agent.len() > MAX_UA_LEN {
        return Err(WireError::UserAgentTooLong(sub.user_agent.len()));
    }
    if sub.values.len() > MAX_VALUES {
        return Err(WireError::TooManyValues(sub.values.len()));
    }
    let mut buf = BytesMut::with_capacity(64 + sub.user_agent.len() + sub.values.len() * 2);
    buf.put_slice(&MAGIC);
    buf.put_u8(WIRE_VERSION);
    buf.put_slice(&sub.session_id);
    buf.put_u16_le(sub.user_agent.len() as u16);
    buf.put_slice(sub.user_agent.as_bytes());
    buf.put_u16_le(sub.values.len() as u16);
    for &v in &sub.values {
        put_varint(&mut buf, v);
    }
    if buf.len() > MAX_SUBMISSION_BYTES {
        return Err(WireError::OverBudget(buf.len()));
    }
    Ok(buf.freeze())
}

/// A borrowed, fully validated view of a submission frame: everything
/// [`decode_submission`] checks, nothing it allocates.
///
/// The serve path decodes hundreds of thousands of frames per second;
/// this view hands the batch drain the user-agent as a borrowed `&str`
/// and streams the LEB128 values straight into the caller's reusable
/// buffer, so the only per-frame allocation left is whatever the caller
/// chooses to keep. Construction validates the *entire* frame — magic,
/// version, field caps, every varint, trailing bytes — so the value
/// iterator afterwards is infallible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmissionView<'a> {
    session_id: [u8; 16],
    user_agent: &'a str,
    /// The validated LEB128 region, exactly `count` varints long.
    values: &'a [u8],
    count: usize,
}

impl<'a> SubmissionView<'a> {
    /// The opaque session identifier.
    pub fn session_id(&self) -> [u8; 16] {
        self.session_id
    }

    /// The claimed `navigator.userAgent`, borrowed from the frame.
    pub fn user_agent(&self) -> &'a str {
        self.user_agent
    }

    /// Number of feature values in the frame.
    pub fn value_count(&self) -> usize {
        self.count
    }

    /// The decoded values, in feature-set order. Infallible: the varint
    /// region was validated when the view was constructed.
    pub fn values_u32(&self) -> impl Iterator<Item = u32> + 'a {
        let mut rest = self.values;
        (0..self.count).map(move |_| {
            let mut out = 0u32;
            let mut shift = 0u32;
            while let Some((&byte, tail)) = rest.split_first() {
                rest = tail;
                out |= u32::from(byte & 0x7f) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            out
        })
    }
}

/// Decodes a submission frame into a borrowed [`SubmissionView`],
/// validating every field exactly as [`decode_submission`] does.
pub fn decode_submission_view(frame: &[u8]) -> Result<SubmissionView<'_>, WireError> {
    let mut rest = frame;
    if rest.remaining() < 2 + 1 + 16 + 2 {
        return Err(WireError::Truncated);
    }
    let mut magic = [0u8; 2];
    rest.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = rest.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let mut session_id = [0u8; 16];
    rest.copy_to_slice(&mut session_id);
    let ua_len = rest.get_u16_le() as usize;
    if ua_len > MAX_UA_LEN {
        return Err(WireError::UserAgentTooLong(ua_len));
    }
    if rest.remaining() < ua_len {
        return Err(WireError::Truncated);
    }
    let (ua_bytes, after_ua) = rest.split_at(ua_len);
    let user_agent = std::str::from_utf8(ua_bytes).map_err(|_| WireError::UserAgentNotUtf8)?;
    let mut rest = after_ua;
    if rest.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    let count = rest.get_u16_le() as usize;
    if count > MAX_VALUES {
        return Err(WireError::TooManyValues(count));
    }
    // Walk (and thereby validate) the whole varint region once, so the
    // view's value iterator can decode it infallibly.
    let values = rest;
    for _ in 0..count {
        get_varint(&mut rest)?;
    }
    if rest.has_remaining() {
        return Err(WireError::TrailingBytes(rest.remaining()));
    }
    Ok(SubmissionView {
        session_id,
        user_agent,
        values,
        count,
    })
}

/// Decodes a submission frame, validating every field.
pub fn decode_submission(frame: &[u8]) -> Result<Submission, WireError> {
    let view = decode_submission_view(frame)?;
    let mut values = Vec::with_capacity(view.value_count());
    values.extend(view.values_u32());
    Ok(Submission {
        session_id: view.session_id(),
        user_agent: view.user_agent().to_string(),
        values,
    })
}

fn put_varint(buf: &mut BytesMut, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(frame: &mut &[u8]) -> Result<u32, WireError> {
    let mut out: u32 = 0;
    for shift in 0..5 {
        if !frame.has_remaining() {
            return Err(WireError::Truncated);
        }
        let byte = frame.get_u8();
        let chunk = (byte & 0x7f) as u32;
        // The 5th byte may only carry 4 bits.
        if shift == 4 && chunk > 0x0f {
            return Err(WireError::VarintOverflow);
        }
        out |= chunk << (7 * shift);
        if byte & 0x80 == 0 {
            return Ok(out);
        }
    }
    Err(WireError::VarintOverflow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Submission {
        Submission {
            session_id: [7u8; 16],
            user_agent: "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 \
                         (KHTML, like Gecko) Chrome/112.0.0.0 Safari/537.36"
                .to_string(),
            values: vec![
                330, 270, 106, 70, 13, 13, 45, 7, 11, 28, 7, 17, 18, 11, 86, 16, 16, 26, 63, 576,
                412, 19, 1, 1, 1, 1, 0, 1,
            ],
        }
    }

    #[test]
    fn round_trip() {
        let sub = sample();
        let bytes = encode_submission(&sub).unwrap();
        let back = decode_submission(&bytes).unwrap();
        assert_eq!(back, sub);
    }

    #[test]
    fn table8_submission_fits_well_under_1kb() {
        let bytes = encode_submission(&sample()).unwrap();
        assert!(
            bytes.len() < 256,
            "28-feature payload is tiny, got {}",
            bytes.len()
        );
    }

    #[test]
    fn full_candidate_payload_fits_budget() {
        // 513 values with realistic magnitudes (most are small counts).
        let mut sub = sample();
        sub.values = (0..513).map(|i| (i % 120) as u32).collect();
        let bytes = encode_submission(&sub).unwrap();
        assert!(
            bytes.len() <= MAX_SUBMISSION_BYTES,
            "candidate payload must fit 1 KB, got {}",
            bytes.len()
        );
    }

    #[test]
    fn view_borrows_without_copying_and_matches_owned_decode() {
        let sub = sample();
        let bytes = encode_submission(&sub).unwrap();
        let view = decode_submission_view(&bytes).unwrap();
        assert_eq!(view.session_id(), sub.session_id);
        assert_eq!(view.user_agent(), sub.user_agent);
        assert_eq!(view.value_count(), sub.values.len());
        let values: Vec<u32> = view.values_u32().collect();
        assert_eq!(values, sub.values);
        // The user-agent is a borrow into the frame, not a copy.
        let frame_range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        assert!(frame_range.contains(&(view.user_agent().as_ptr() as usize)));
    }

    #[test]
    fn view_rejects_exactly_what_owned_decode_rejects() {
        let bytes = encode_submission(&sample()).unwrap();
        for cut in 0..bytes.len() {
            let owned = decode_submission(&bytes[..cut]).map(|_| ());
            let view = decode_submission_view(&bytes[..cut]).map(|_| ());
            assert_eq!(owned, view, "cut at {cut} must agree");
        }
        let mut trailing = bytes.to_vec();
        trailing.push(0);
        assert_eq!(
            decode_submission_view(&trailing),
            Err(WireError::TrailingBytes(1))
        );
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let bytes = encode_submission(&sample()).unwrap().to_vec();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode_submission(&bad), Err(WireError::BadMagic));
        let mut badv = bytes;
        badv[2] = 99;
        assert_eq!(
            decode_submission(&badv),
            Err(WireError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = encode_submission(&sample()).unwrap();
        for cut in 0..bytes.len() {
            let r = decode_submission(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = encode_submission(&sample()).unwrap().to_vec();
        bytes.push(0);
        assert_eq!(decode_submission(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn rejects_oversized_fields() {
        let mut sub = sample();
        sub.user_agent = "x".repeat(MAX_UA_LEN + 1);
        assert!(matches!(
            encode_submission(&sub),
            Err(WireError::UserAgentTooLong(_))
        ));
        let mut sub = sample();
        sub.values = vec![0; MAX_VALUES + 1];
        assert!(matches!(
            encode_submission(&sub),
            Err(WireError::TooManyValues(_))
        ));
    }

    #[test]
    fn rejects_over_budget_payload() {
        let mut sub = sample();
        // Large values take 5 varint bytes each; 300 of them burst 1 KB.
        sub.values = vec![u32::MAX; 300];
        assert!(matches!(
            encode_submission(&sub),
            Err(WireError::OverBudget(_))
        ));
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u32, 1, 127, 128, 16383, 16384, u32::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut slice: &[u8] = &buf;
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_overflow_detected() {
        // 6 continuation bytes.
        let data = [0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        let mut slice: &[u8] = &data;
        assert_eq!(get_varint(&mut slice), Err(WireError::VarintOverflow));
    }

    #[test]
    fn empty_input_is_truncated_not_panic() {
        assert_eq!(decode_submission(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn stats_request_is_disjoint_from_submissions() {
        let req = encode_stats_request();
        assert!(is_stats_request(&req));
        // A stats request can never decode as a submission…
        assert!(decode_submission(&req).is_err());
        // …and no valid submission frame reads as a stats request (the
        // magics differ, and submissions are longer anyway).
        let sub = encode_submission(&sample()).unwrap();
        assert!(!is_stats_request(&sub));
        // Wrong version or length is not a stats request.
        assert!(!is_stats_request(&[b'B', b'S', 99]));
        assert!(!is_stats_request(b"BS"));
        assert!(!is_stats_request(&[b'B', b'S', WIRE_VERSION, 0]));
    }

    #[test]
    fn cache_key_ignores_session_id_but_not_payload() {
        let a = encode_submission(&sample()).unwrap();
        let mut b_sub = sample();
        b_sub.session_id = [42u8; 16];
        let b = encode_submission(&b_sub).unwrap();
        assert_ne!(a, b);
        assert_eq!(
            submission_cache_key(&a),
            submission_cache_key(&b),
            "two sessions with the same (fingerprint, UA) pair share a key"
        );

        let mut c_sub = sample();
        c_sub.values[0] += 1;
        let c = encode_submission(&c_sub).unwrap();
        assert_ne!(
            submission_cache_key(&a),
            submission_cache_key(&c),
            "a different fingerprint must not share the key"
        );
        let mut d_sub = sample();
        d_sub.user_agent.push('X');
        let d = encode_submission(&d_sub).unwrap();
        assert_ne!(submission_cache_key(&a), submission_cache_key(&d));
    }

    #[test]
    fn cache_key_is_stable_across_calls_and_rejects_non_submissions() {
        let frame = encode_submission(&sample()).unwrap();
        let k1 = submission_cache_key(&frame);
        let k2 = submission_cache_key(&frame);
        assert_eq!(k1, k2);
        assert!(k1.is_some());
        // Known-value pin: the hasher is part of the replay contract. If
        // this changes, cached-state fixtures and bench baselines break.
        assert_eq!(
            submission_cache_key(&frame),
            submission_cache_key(&frame.to_vec())
        );

        assert_eq!(submission_cache_key(&[]), None);
        assert_eq!(
            submission_cache_key(b"BS\x01"),
            None,
            "stats frames are not cacheable"
        );
        assert_eq!(
            submission_cache_key(&frame[..10]),
            None,
            "truncated prefix has no key"
        );
        let mut wrong_version = frame.to_vec();
        wrong_version[2] = 9;
        assert_eq!(submission_cache_key(&wrong_version), None);
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    proptest! {
        #[test]
        fn prop_cache_key_depends_only_on_ua_and_values(
            id_a in any::<[u8; 16]>(),
            id_b in any::<[u8; 16]>(),
            ua in "[ -~]{0,64}",
            values in proptest::collection::vec(0u32..100_000, 0..64),
        ) {
            let a = Submission { session_id: id_a, user_agent: ua.clone(), values: values.clone() };
            let b = Submission { session_id: id_b, user_agent: ua, values };
            let fa = encode_submission(&a).unwrap();
            let fb = encode_submission(&b).unwrap();
            prop_assert_eq!(submission_cache_key(&fa), submission_cache_key(&fb));
            prop_assert!(submission_cache_key(&fa).is_some());
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip_arbitrary(
            id in any::<[u8; 16]>(),
            ua in "[ -~]{0,200}",
            values in proptest::collection::vec(0u32..100_000, 0..200),
        ) {
            let sub = Submission { session_id: id, user_agent: ua, values };
            if let Ok(bytes) = encode_submission(&sub) {
                let back = decode_submission(&bytes).unwrap();
                prop_assert_eq!(back, sub);
            }
        }

        #[test]
        fn prop_decoder_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..600)) {
            let _ = decode_submission(&noise);
        }

        /// The truncation-bug regression, from the encoder's side: for
        /// *any* input — including user-agents far beyond [`MAX_UA_LEN`]
        /// and value vectors that burst the budget — `encode_submission`
        /// either errors or yields a frame that round-trips and whose
        /// length fits the u16 length-prefixed framing without a lossy
        /// `as u16` cast. A silently truncated frame can never escape.
        #[test]
        fn prop_encode_rejects_rather_than_truncates(
            ua_len in 0usize..2048,
            values in proptest::collection::vec(any::<u32>(), 0..300),
        ) {
            let sub = Submission {
                session_id: [9u8; 16],
                user_agent: "u".repeat(ua_len),
                values,
            };
            if let Ok(bytes) = encode_submission(&sub) {
                prop_assert!(bytes.len() <= MAX_SUBMISSION_BYTES);
                prop_assert!(u16::try_from(bytes.len()).is_ok());
                prop_assert_eq!(decode_submission(&bytes).unwrap(), sub);
            }
        }

        #[test]
        fn prop_mutated_frames_never_panic(
            flip in 0usize..200,
            byte in any::<u8>(),
        ) {
            let bytes = encode_submission(&sample()).unwrap().to_vec();
            let mut mutated = bytes.clone();
            let idx = flip % mutated.len();
            mutated[idx] = byte;
            let _ = decode_submission(&mutated);
        }
    }
}
