//! # polygraph-obs
//!
//! A dependency-free, deterministic observability layer for the Browser
//! Polygraph deployment pipeline (the paper's §6.5 operating story:
//! per-release accuracy, drift triggers, retraining latency — all of it
//! needs *inspectable per-stage measurements* to be trustworthy).
//!
//! Three pieces:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s (power-of-two microsecond buckets, so the exposition
//!   shape is platform-stable), plus lightweight [`Span`] timers.
//! * [`Clock`] — the injected time source. Production uses
//!   [`MonotonicClock`] (the workspace's one audited wall-clock
//!   exemption, see `lint.toml`); tests use [`TestClock`] so every
//!   recorded duration — and therefore every snapshot byte — is exactly
//!   reproducible.
//! * [`Snapshot`] — a frozen, `BTreeMap`-ordered copy of the registry
//!   that renders to a stable text exposition and to JSON. The risk
//!   server ships it over the wire in answer to `STATS` frames.
//!
//! Naming scheme: `<subsystem>.<noun>[.<verb|unit>]`, lowercase
//! `[a-z0-9_.]`; durations end in `_micros`, e.g.
//! `server.assess.batch_micros`, `client.round_trip_micros`,
//! `orchestrator.retrain_micros`, `fit.kmeans_micros`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod registry;
pub mod snapshot;

pub use clock::{Clock, MonotonicClock, TestClock};
pub use metrics::{bucket_bound, bucket_index, Counter, Gauge, Histogram, BUCKETS};
pub use registry::{Registry, Span};
pub use snapshot::{HistogramSnapshot, Snapshot};
