//! Fraud hunt: run every catalogued anti-detect browser through a trained
//! detector, the way the paper's §7.2 private-site experiment does.
//!
//! ```sh
//! cargo run --release --example fraud_hunt
//! ```

use browser_polygraph::core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use browser_polygraph::fingerprint::FeatureSet;
use browser_polygraph::fraud::{table1_products, ProfilePlan};
use browser_polygraph::traffic::{generate, TrafficConfig};

fn main() {
    let features = FeatureSet::table8();
    let window = TrafficConfig::paper_training().with_sessions(20_000);
    println!("training on {} sessions ...", window.sessions);
    let data = generate(&features, &window);
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows, uas).expect("well-formed");
    let model = TrainedModel::fit(features, &training, TrainConfig::default()).expect("training");
    let detector = Detector::new(model);

    println!(
        "\n{:<24} {:>8} {:>8} {:>9} {:>8}",
        "product", "category", "flagged", "missed", "avg rf"
    );
    for product in table1_products() {
        let plan = ProfilePlan::for_product(&product);
        let mut flagged = 0usize;
        let mut risk_sum = 0u64;
        for profile in &plan.profiles {
            let verdict = detector
                .assess_browser(&profile.instantiate())
                .expect("assessment");
            if verdict.flagged {
                flagged += 1;
                risk_sum += verdict.risk_factor as u64;
            }
        }
        let avg = if flagged > 0 {
            risk_sum as f64 / flagged as f64
        } else {
            0.0
        };
        println!(
            "{:<24} {:>8} {:>8} {:>9} {:>8.2}{}",
            format!("{}-{}", product.name, product.version),
            product.category.number(),
            flagged,
            plan.profiles.len() - flagged,
            avg,
            if product.category.coarse_grained_detectable() {
                ""
            } else {
                "   (undetectable by design)"
            },
        );
    }

    println!(
        "\ncategories 1-2 are the coarse-grained detection target; categories 3-4 \
         \nrecreate a consistent environment and require other defences (paper §2.3/§8)."
    );
}
