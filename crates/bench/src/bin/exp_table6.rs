//! Table 6 (§7.3): drift analysis of the trained model over the late-July
//! to October 2023 window.
//!
//! The model trained on the March–mid-July window is evaluated at the
//! paper's five checkpoints, each a few days after a Firefox release. At
//! every checkpoint the drift detector measures each new release's
//! predominant cluster and accuracy; the run must stay stable until the
//! 10/31 checkpoint, where Firefox 119 flips clusters and Chrome 119's
//! accuracy dips — the retraining trigger.

use browser_engine::{UserAgent, Vendor};
use polygraph_bench::{header, parse_options, train_paper_model};
use polygraph_core::{DriftDecision, DriftDetector, TrainingSet};
use traffic::{generate, TrafficConfig};

fn main() {
    let opts = parse_options();
    println!(
        "training Browser Polygraph on {} simulated sessions ...",
        opts.sessions
    );
    let (model, _) = train_paper_model(opts);

    // Fresh traffic from the drift window (its size scales with the
    // training option so new releases get enough observations).
    let fs = fingerprint::FeatureSet::table8();
    let drift_cfg = TrafficConfig::drift_window().with_sessions(opts.sessions);
    let drift_data = generate(&fs, &drift_cfg);
    let (rows, uas) = drift_data.rows_and_user_agents();
    let batch = TrainingSet::from_rows(rows, uas).expect("well-formed");

    let detector = DriftDetector::new(&model);

    header("Table 6: drift analysis (late-July to October 2023)");
    println!(
        "  {:<14} {:>6} {:>9} {:>10}   paper (cluster, accuracy)",
        "browser", "date", "cluster", "accuracy"
    );
    type Checkpoint = (&'static str, u32, [(&'static str, &'static str); 3]);
    let checkpoints: [Checkpoint; 5] = [
        (
            "07/25",
            115,
            [
                ("Chrome", "3, 99.45"),
                ("Firefox", "1, 99.3"),
                ("Edge", "3, 100"),
            ],
        ),
        (
            "08/25",
            116,
            [
                ("Chrome", "3, 99.6"),
                ("Firefox", "1, 99.99"),
                ("Edge", "3, 99.88"),
            ],
        ),
        (
            "09/25",
            117,
            [
                ("Chrome", "3, 99.25"),
                ("Firefox", "1, 99.81"),
                ("Edge", "3, 99.94"),
            ],
        ),
        (
            "10/23",
            118,
            [
                ("Chrome", "3, 99.65"),
                ("Firefox", "1, 99.46"),
                ("Edge", "3, 99.91"),
            ],
        ),
        (
            "10/31",
            119,
            [
                ("Chrome", "3, 97.22"),
                ("Firefox", "10, 98.57"),
                ("Edge", "3, 99.84"),
            ],
        ),
    ];

    let mut final_decision = DriftDecision::Stable;
    for (date, version, paper_rows) in checkpoints {
        let releases = [
            UserAgent::new(Vendor::Chrome, version),
            UserAgent::new(Vendor::Firefox, version),
            UserAgent::new(Vendor::Edge, version),
        ];
        let (observations, decision) = detector
            .checkpoint(&batch, &releases)
            .expect("all releases observed in the drift window");
        for (obs, (vendor, paper)) in observations.iter().zip(paper_rows) {
            let marker = if obs.triggers_retraining() {
                "  <-- drift"
            } else {
                ""
            };
            println!(
                "  {:<14} {date:>6} {:>9} {:>9.2}%   paper: ({paper}){marker}",
                format!("{vendor} {version}"),
                obs.cluster,
                obs.accuracy * 100.0,
            );
        }
        if let DriftDecision::Retrain { triggers } = &decision {
            println!(
                "  >> checkpoint {date}: RETRAIN triggered by {}",
                triggers
                    .iter()
                    .map(|u| u.label())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            final_decision = decision.clone();
        } else {
            println!("  >> checkpoint {date}: stable");
        }
    }

    header("outcome");
    match final_decision {
        DriftDecision::Retrain { .. } => println!(
            "  retraining signalled in late October, as the paper observed\n  \
             (Firefox 119's Element-prototype overhaul; Chrome 119 field-trial churn)"
        ),
        DriftDecision::Stable => {
            println!("  NO retraining signalled — does not match the paper")
        }
    }
}
