//! The retraining orchestrator: §6.6 as a running loop.
//!
//! On each checkpoint the orchestrator feeds freshly collected traffic to
//! the drift detector. While releases cluster as expected, nothing
//! happens. When one shifts, it retrains on the fresh window, *validates*
//! the candidate model (a bad window must never replace a good model),
//! publishes it to the registry, and hot-swaps the serving detector.
//!
//! ## Shadow deployment
//!
//! With [`OrchestratorConfig::shadow`] set, a validated candidate is not
//! published immediately. It is attached to the live serve path as a
//! *shadow scorer* ([`RiskServerHandle::attach_shadow`]): every decoded
//! session is assessed by both the serving detector and the candidate,
//! the candidate's verdict is compared and discarded, and only the
//! `orchestrator.shadow.compared` / `orchestrator.shadow.diverged`
//! counters move. The candidate is promoted — published versioned and
//! (under [`SwapPolicy::PublishAndSwap`]) swapped in — only after its
//! divergence rate stayed under [`ShadowConfig::max_divergence`] for
//! [`ShadowConfig::required_checkpoints`] consecutive checkpoints;
//! otherwise it is discarded without ever touching the registry or the
//! serving slot. See DESIGN.md §5l for the full state machine.
//!
//! ## Streaming checkpoints
//!
//! [`Orchestrator::checkpoint_stream`] runs the same loop against a
//! [`DriftStream`]: the drift decision is answered from the stream's
//! counters alone (a stable checkpoint never copies the reservoir), and
//! a drift-triggered retrain warm-starts from the serving model with
//! [`TrainedModel::refit_streaming`] — mini-batch k-means over the
//! reservoir window — instead of a full from-scratch fit.

use crate::registry::ModelRegistry;
use crate::server::RiskServerHandle;
use browser_engine::UserAgent;
use polygraph_core::{
    DriftDecision, DriftDetector, DriftObservation, DriftStream, PolygraphError, TrainConfig,
    TrainedModel, TrainingSet,
};
use polygraph_ml::ThreadPool;
use polygraph_obs::Span;
use std::io;

/// Metric names the orchestrator records into the risk server's registry,
/// so one `STATS` snapshot covers serving *and* retraining.
pub mod metric_names {
    /// Drift checkpoints run (counter).
    pub const CHECKPOINTS: &str = "orchestrator.checkpoints";
    /// Per-release drift observations measured (counter).
    pub const DRIFT_EVALUATIONS: &str = "orchestrator.drift.evaluations";
    /// Checkpoints that retrained and swapped a new model in (counter).
    pub const RETRAINS: &str = "orchestrator.drift.retrains";
    /// Checkpoints whose candidate failed the accuracy bar (counter).
    pub const RETRAINS_REJECTED: &str = "orchestrator.drift.rejected";
    /// End-to-end retrain duration in µs, fit through swap (histogram).
    pub const RETRAIN_MICROS: &str = "orchestrator.retrain_micros";
    /// Models published to the on-disk registry (counter).
    pub const REGISTRY_PUBLISHES: &str = "orchestrator.registry.publishes";
    /// Checkpoints whose retrain *errored* (corrupt window) and fell back
    /// to the last-good registry model (counter).
    pub const FALLBACKS: &str = "orchestrator.drift.fallbacks";
    /// Sessions double-scored by a shadow candidate on the live serve
    /// path (counter; registered only once a shadow attaches).
    pub const SHADOW_COMPARED: &str = "orchestrator.shadow.compared";
    /// Double-scored sessions where the candidate's verdict disagreed
    /// with the serving verdict (counter).
    pub const SHADOW_DIVERGED: &str = "orchestrator.shadow.diverged";
    /// Candidates attached to the serve path as shadow scorers (counter).
    pub const SHADOW_STARTED: &str = "orchestrator.shadow.started";
    /// Shadow candidates discarded for diverging past the gate (counter).
    pub const SHADOW_REJECTED: &str = "orchestrator.shadow.rejected";
    /// Shadow candidates promoted to the registry (counter).
    pub const SHADOW_PROMOTED: &str = "orchestrator.shadow.promoted";
}

/// How a validated candidate model reaches serving detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwapPolicy {
    /// Publish to the registry *and* hot-swap this server immediately —
    /// the single-server §6.6 loop.
    #[default]
    PublishAndSwap,
    /// Publish to the registry only. Propagation to serving nodes is
    /// owned by a fleet [`crate::fleet::RolloutController`], which rolls
    /// the published version canary → 50% → full under its per-node
    /// divergence gate; the orchestrator must not swap behind its back.
    PublishOnly,
}

/// The shadow-deployment gate: how long and how cleanly a candidate
/// must ride the live serve path before it may be promoted.
///
/// The divergence gate here and the fleet rollout's per-node divergence
/// gate ([`crate::fleet::RolloutConfig`]) answer different questions:
/// this one decides whether a candidate *becomes a version at all*
/// (pre-publish, one server, live traffic); the fleet gate decides
/// whether an already-published version *keeps spreading* (post-publish,
/// per node, replayed probes). A candidate must pass both to reach a
/// whole fleet.
#[derive(Debug, Clone, Copy)]
pub struct ShadowConfig {
    /// Maximum tolerated divergence per checkpoint window, as a
    /// fraction of comparisons (`diverged <= max_divergence * compared`
    /// passes).
    pub max_divergence: f64,
    /// Consecutive clean checkpoints a candidate must survive before
    /// promotion.
    pub required_checkpoints: usize,
    /// Minimum comparisons a checkpoint window must contain to count at
    /// all — a quiet window is neither clean nor dirty, it just waits.
    pub min_compared: u64,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        Self {
            max_divergence: 0.02,
            required_checkpoints: 2,
            min_compared: 1,
        }
    }
}

/// Orchestrator settings.
#[derive(Debug, Clone, Copy)]
pub struct OrchestratorConfig {
    /// Training configuration used for retrains.
    pub train: TrainConfig,
    /// Minimum majority-cluster accuracy a candidate model must reach on
    /// its own training window to be published (the §6.6 quality bar).
    pub min_accuracy: f64,
    /// How many registry versions to retain after a publish.
    pub keep_versions: usize,
    /// Whether a validated candidate is swapped into this server or only
    /// published for a fleet rollout to distribute.
    pub swap: SwapPolicy,
    /// Mini-batch epochs a streaming checkpoint's candidate absorbs in
    /// [`TrainedModel::refit_streaming`] (used by
    /// [`Orchestrator::checkpoint_stream`] only).
    pub refit_epochs: usize,
    /// When set, validated candidates shadow the live serve path and
    /// must pass the divergence gate before publishing; when `None`,
    /// a validated candidate publishes immediately (the original §6.6
    /// loop).
    pub shadow: Option<ShadowConfig>,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig::default(),
            min_accuracy: 0.98,
            keep_versions: 4,
            swap: SwapPolicy::PublishAndSwap,
            refit_epochs: 4,
            shadow: None,
        }
    }
}

/// What a checkpoint did.
#[derive(Debug)]
pub enum RetrainOutcome {
    /// No drift; the serving model stays.
    Stable {
        /// The per-release measurements of the checkpoint.
        observations: Vec<DriftObservation>,
    },
    /// Drift detected; a new model was trained, validated, published and
    /// swapped in.
    Retrained {
        /// The releases that triggered the retrain.
        triggers: Vec<UserAgent>,
        /// The registry version of the new model.
        version: u64,
        /// The new model's training accuracy.
        accuracy: f64,
    },
    /// Drift detected, but the candidate model failed validation; the old
    /// model keeps serving and the condition should be investigated.
    RetrainRejected {
        /// The releases that triggered the retrain attempt.
        triggers: Vec<UserAgent>,
        /// The rejected candidate's accuracy.
        accuracy: f64,
    },
    /// Drift detected but the retrain window itself was unusable (too
    /// few rows, width mismatch — a corrupt collection run). Instead of
    /// erroring out of the checkpoint, the orchestrator re-asserted the
    /// last-good model from the registry so the serving detector is in a
    /// known-published state, and reports the failure for investigation.
    Fallback {
        /// The releases that triggered the retrain attempt.
        triggers: Vec<UserAgent>,
        /// The registry version swapped back in, or `None` when the
        /// registry holds no loadable model (the in-memory detector then
        /// keeps serving unchanged).
        version: Option<u64>,
        /// The retrain error, stringified for the operator.
        error: String,
    },
    /// Drift detected and a candidate validated; instead of publishing,
    /// it was attached to the serve path as a shadow scorer and now
    /// rides live traffic.
    ShadowStarted {
        /// The releases that triggered the retrain.
        triggers: Vec<UserAgent>,
        /// The candidate's training accuracy.
        accuracy: f64,
    },
    /// A shadow candidate is in flight and this checkpoint did not yet
    /// decide its fate — either the window was too quiet
    /// ([`ShadowConfig::min_compared`]) or more clean checkpoints are
    /// still required.
    ShadowPending {
        /// Comparisons in this checkpoint's window.
        compared: u64,
        /// Divergences in this checkpoint's window.
        diverged: u64,
        /// Clean checkpoints accumulated so far.
        clean_checkpoints: usize,
    },
    /// The shadow candidate held its agreement for the configured number
    /// of checkpoints and was promoted: published versioned and (under
    /// [`SwapPolicy::PublishAndSwap`]) swapped into this server.
    ShadowPromoted {
        /// The registry version of the promoted model.
        version: u64,
        /// Clean checkpoints the candidate survived.
        checkpoints: usize,
    },
    /// The shadow candidate diverged past the gate and was discarded.
    /// Nothing was published; the serving model never changed.
    ShadowRejected {
        /// Comparisons in the rejecting checkpoint's window.
        compared: u64,
        /// Divergences in the rejecting checkpoint's window.
        diverged: u64,
    },
}

/// Errors from a checkpoint run.
#[derive(Debug)]
pub enum OrchestratorError {
    /// Pipeline error (drift measurement or training).
    Pipeline(PolygraphError),
    /// Registry I/O error.
    Registry(io::Error),
}

impl std::fmt::Display for OrchestratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrchestratorError::Pipeline(e) => write!(f, "pipeline: {e}"),
            OrchestratorError::Registry(e) => write!(f, "registry: {e}"),
        }
    }
}

impl std::error::Error for OrchestratorError {}

impl From<PolygraphError> for OrchestratorError {
    fn from(e: PolygraphError) -> Self {
        OrchestratorError::Pipeline(e)
    }
}
impl From<io::Error> for OrchestratorError {
    fn from(e: io::Error) -> Self {
        OrchestratorError::Registry(e)
    }
}

/// A candidate model riding the serve path as a shadow, plus the gate
/// bookkeeping that decides its fate.
struct ShadowCandidate {
    /// The validated candidate, kept so promotion publishes exactly the
    /// model that was shadow-scored — no refit, no mutation.
    model: TrainedModel,
    /// Clean checkpoints survived so far.
    clean_checkpoints: usize,
    /// `orchestrator.shadow.compared` total when this window started.
    baseline_compared: u64,
    /// `orchestrator.shadow.diverged` total when this window started.
    baseline_diverged: u64,
}

/// Drives drift checkpoints against a serving risk server.
pub struct Orchestrator<'s> {
    server: &'s RiskServerHandle,
    registry: ModelRegistry,
    config: OrchestratorConfig,
    /// The shadow candidate in flight, if any. Present only between a
    /// `ShadowStarted` outcome and the matching `ShadowPromoted` /
    /// `ShadowRejected`.
    shadow: Option<ShadowCandidate>,
}

impl<'s> Orchestrator<'s> {
    /// Creates an orchestrator for `server`, persisting models in
    /// `registry`.
    pub fn new(
        server: &'s RiskServerHandle,
        registry: ModelRegistry,
        config: OrchestratorConfig,
    ) -> Self {
        Self {
            server,
            registry,
            config,
            shadow: None,
        }
    }

    /// The registry this orchestrator publishes to.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Whether a shadow candidate is currently riding the serve path.
    pub fn shadow_in_flight(&self) -> bool {
        self.shadow.is_some()
    }

    /// The model of the shadow candidate in flight, if any — so an
    /// operator (or a successor orchestrator, via
    /// [`Self::adopt_shadow`]) can persist it across a restart.
    pub fn shadow_candidate(&self) -> Option<&TrainedModel> {
        self.shadow.as_ref().map(|c| &c.model)
    }

    /// Adopts `model` as the shadow candidate in flight — restart
    /// recovery for an orchestrator that died (or was handed off) while
    /// a candidate was riding the serve path. The candidate is
    /// (re)attached to the server and the gate restarts from the current
    /// counter totals with zero clean checkpoints, so an adopted
    /// candidate earns the full [`ShadowConfig::required_checkpoints`]
    /// again rather than inheriting unverifiable progress.
    pub fn adopt_shadow(&mut self, model: TrainedModel) {
        let obs = self.server.registry();
        let baseline_compared = obs.counter(metric_names::SHADOW_COMPARED).get();
        let baseline_diverged = obs.counter(metric_names::SHADOW_DIVERGED).get();
        self.server.attach_shadow(model.clone());
        self.shadow = Some(ShadowCandidate {
            model,
            clean_checkpoints: 0,
            baseline_compared,
            baseline_diverged,
        });
    }

    /// Runs one checkpoint: measure `releases` over `fresh` traffic; on
    /// drift, retrain on `fresh`, validate, then publish-and-swap — or,
    /// with [`OrchestratorConfig::shadow`] set, attach the candidate as
    /// a shadow scorer and let later checkpoints decide its fate.
    pub fn checkpoint(
        &mut self,
        fresh: &TrainingSet,
        releases: &[UserAgent],
    ) -> Result<RetrainOutcome, OrchestratorError> {
        let obs = self.server.registry();
        obs.counter(metric_names::CHECKPOINTS).inc();

        // A shadow in flight owns the checkpoint: its agreement window
        // is judged before (instead of) looking for new drift, so one
        // candidate at a time rides the serve path.
        if let Some(outcome) = self.evaluate_shadow()? {
            return Ok(outcome);
        }

        // Measure against the *currently serving* model. The model is
        // cloned out of the detector slot so the read guard is released
        // before the checkpoint measurement runs — holding it across
        // `DriftDetector::checkpoint` (a full re-clustering pass over the
        // fresh window) would starve `swap_detector` and block serving
        // writers for the whole measurement (POLY-L002).
        let serving_model = {
            let slot = self.server.detector_slot();
            let guard = slot.read();
            guard.model().clone()
        };
        let (observations, decision) = {
            let monitor = DriftDetector::new(&serving_model);
            monitor.checkpoint(fresh, releases)?
        };
        obs.counter(metric_names::DRIFT_EVALUATIONS)
            .add(observations.len() as u64);

        let triggers = match decision {
            DriftDecision::Stable => return Ok(RetrainOutcome::Stable { observations }),
            DriftDecision::Retrain { triggers } => triggers,
        };

        // Retrain on the fresh window with the serving feature schema.
        // The fit records its per-phase timings (`fit.*`) into the
        // server's registry; this span wraps the whole fit-to-swap path.
        // Reuse the measured model's schema rather than re-reading the
        // slot: if a concurrent swap landed mid-checkpoint, retraining
        // against the schema that produced `decision` stays coherent.
        let retrain_span = obs.span(metric_names::RETRAIN_MICROS);
        let feature_set = serving_model.feature_set().clone();
        let candidate = match TrainedModel::fit_observed(
            feature_set,
            fresh,
            self.config.train,
            &ThreadPool::serial(),
            &obs,
        ) {
            Ok(candidate) => candidate,
            Err(err) => {
                retrain_span.cancel();
                return self.fall_back_to_last_good(triggers, err);
            }
        };
        self.review_candidate(candidate, triggers, retrain_span)
    }

    /// [`Self::checkpoint`] against a live [`DriftStream`]. The drift
    /// decision is answered from the stream's counters alone — a stable
    /// checkpoint never materializes the reservoir window (pinned by the
    /// no-allocation regression test) — and a drift-triggered retrain
    /// warm-starts from the serving model with
    /// [`TrainedModel::refit_streaming`] on the reservoir window, at
    /// mini-batch cost instead of a full from-scratch fit. Counters are
    /// reset whenever a retrain consumed the window (the candidate
    /// started shadowing or swapped in) and again at promotion, so the
    /// next window is measured against the model that now serves.
    pub fn checkpoint_stream(
        &mut self,
        stream: &mut DriftStream,
        releases: &[UserAgent],
    ) -> Result<RetrainOutcome, OrchestratorError> {
        let obs = self.server.registry();
        obs.counter(metric_names::CHECKPOINTS).inc();

        if let Some(outcome) = self.evaluate_shadow()? {
            if matches!(outcome, RetrainOutcome::ShadowPromoted { .. }) {
                stream.reset_counters();
            }
            return Ok(outcome);
        }

        let serving_model = {
            let slot = self.server.detector_slot();
            let guard = slot.read();
            guard.model().clone()
        };
        let (observations, decision) = stream.checkpoint(&serving_model, releases)?;
        obs.counter(metric_names::DRIFT_EVALUATIONS)
            .add(observations.len() as u64);

        let triggers = match decision {
            DriftDecision::Stable => return Ok(RetrainOutcome::Stable { observations }),
            DriftDecision::Retrain { triggers } => triggers,
        };

        // Drift fired: now — and only now — copy the reservoir out and
        // absorb it into a warm-started candidate.
        let retrain_span = obs.span(metric_names::RETRAIN_MICROS);
        let fresh = stream.training_window()?;
        let candidate = match serving_model.refit_streaming(
            &fresh,
            self.config.refit_epochs,
            &ThreadPool::serial(),
        ) {
            Ok(candidate) => candidate,
            Err(err) => {
                retrain_span.cancel();
                return self.fall_back_to_last_good(triggers, err);
            }
        };
        let outcome = self.review_candidate(candidate, triggers, retrain_span)?;
        if matches!(
            outcome,
            RetrainOutcome::Retrained { .. } | RetrainOutcome::ShadowStarted { .. }
        ) {
            stream.reset_counters();
        }
        Ok(outcome)
    }

    /// Judges the shadow candidate in flight, if any: reads this
    /// checkpoint's `(compared, diverged)` window off the shadow
    /// counters, then rejects, promotes, or keeps waiting. `Ok(None)`
    /// means no shadow is in flight and the checkpoint should proceed to
    /// drift detection.
    fn evaluate_shadow(&mut self) -> Result<Option<RetrainOutcome>, OrchestratorError> {
        let Some(cfg) = self.config.shadow else {
            return Ok(None);
        };
        let obs = self.server.registry();
        let compared_total = obs.counter(metric_names::SHADOW_COMPARED).get();
        let diverged_total = obs.counter(metric_names::SHADOW_DIVERGED).get();
        let (compared, diverged, clean_so_far) = match self.shadow.as_ref() {
            Some(c) => (
                compared_total.saturating_sub(c.baseline_compared),
                diverged_total.saturating_sub(c.baseline_diverged),
                c.clean_checkpoints,
            ),
            None => return Ok(None),
        };

        // A quiet window proves nothing either way: keep shadowing.
        if compared < cfg.min_compared {
            return Ok(Some(RetrainOutcome::ShadowPending {
                compared,
                diverged,
                clean_checkpoints: clean_so_far,
            }));
        }

        if diverged as f64 > cfg.max_divergence * compared as f64 {
            // Discard: detach first so double-scoring stops, and never
            // touch the registry — a rejected candidate must leave no
            // trace beyond its counters.
            self.shadow = None;
            self.server.detach_shadow();
            obs.counter(metric_names::SHADOW_REJECTED).inc();
            return Ok(Some(RetrainOutcome::ShadowRejected { compared, diverged }));
        }

        let clean = clean_so_far + 1;
        if clean < cfg.required_checkpoints {
            if let Some(c) = self.shadow.as_mut() {
                c.clean_checkpoints = clean;
                c.baseline_compared = compared_total;
                c.baseline_diverged = diverged_total;
            }
            return Ok(Some(RetrainOutcome::ShadowPending {
                compared,
                diverged,
                clean_checkpoints: clean,
            }));
        }

        // Promotion: the candidate held its agreement for the full gate.
        let Some(candidate) = self.shadow.take() else {
            return Ok(None);
        };
        self.server.detach_shadow();
        let version = self.registry.publish(&candidate.model)?;
        obs.counter(metric_names::REGISTRY_PUBLISHES).inc();
        self.registry.prune(self.config.keep_versions)?;
        if self.config.swap == SwapPolicy::PublishAndSwap {
            self.server
                .publish_model_versioned(candidate.model, version);
        }
        obs.counter(metric_names::SHADOW_PROMOTED).inc();
        obs.counter(metric_names::RETRAINS).inc();
        Ok(Some(RetrainOutcome::ShadowPromoted {
            version,
            checkpoints: clean,
        }))
    }

    /// Validates a freshly trained candidate and routes it: below the
    /// accuracy bar it is rejected outright; with a shadow gate
    /// configured it attaches to the serve path; otherwise it publishes
    /// and (per [`SwapPolicy`]) swaps immediately.
    fn review_candidate(
        &mut self,
        candidate: TrainedModel,
        triggers: Vec<UserAgent>,
        retrain_span: Span,
    ) -> Result<RetrainOutcome, OrchestratorError> {
        let obs = self.server.registry();
        let accuracy = candidate.train_accuracy();
        if accuracy < self.config.min_accuracy {
            obs.counter(metric_names::RETRAINS_REJECTED).inc();
            return Ok(RetrainOutcome::RetrainRejected { triggers, accuracy });
        }

        if self.config.shadow.is_some() {
            // Baselines are read *before* attaching, so comparisons that
            // land between attach and the next checkpoint all count
            // toward the candidate's first window.
            let baseline_compared = obs.counter(metric_names::SHADOW_COMPARED).get();
            let baseline_diverged = obs.counter(metric_names::SHADOW_DIVERGED).get();
            self.server.attach_shadow(candidate.clone());
            self.shadow = Some(ShadowCandidate {
                model: candidate,
                clean_checkpoints: 0,
                baseline_compared,
                baseline_diverged,
            });
            obs.counter(metric_names::SHADOW_STARTED).inc();
            retrain_span.finish();
            return Ok(RetrainOutcome::ShadowStarted { triggers, accuracy });
        }

        let version = self.registry.publish(&candidate)?;
        obs.counter(metric_names::REGISTRY_PUBLISHES).inc();
        self.registry.prune(self.config.keep_versions)?;
        if self.config.swap == SwapPolicy::PublishAndSwap {
            self.server.publish_model(candidate);
        }
        obs.counter(metric_names::RETRAINS).inc();
        retrain_span.finish();
        Ok(RetrainOutcome::Retrained {
            triggers,
            version,
            accuracy,
        })
    }

    /// A corrupt retrain window must not take the checkpoint loop down.
    /// Re-assert the last-good *published* model (which
    /// `load_latest_versioned` guarantees is intact) so serving state is
    /// reproducible from the registry, and surface the failure as an
    /// outcome, not an error.
    fn fall_back_to_last_good(
        &self,
        triggers: Vec<UserAgent>,
        err: PolygraphError,
    ) -> Result<RetrainOutcome, OrchestratorError> {
        let obs = self.server.registry();
        obs.counter(metric_names::FALLBACKS).inc();
        let version = match self.registry.load_latest_versioned()? {
            Some((version, last_good)) => {
                // Under `PublishOnly` the serving model belongs to the
                // fleet rollout — re-asserting last-good here would swap
                // behind its back.
                if self.config.swap == SwapPolicy::PublishAndSwap {
                    self.server.publish_model(last_good);
                }
                Some(version)
            }
            None => None,
        };
        Ok(RetrainOutcome::Fallback {
            triggers,
            version,
            error: err.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::start_risk_server;
    use browser_engine::Vendor;
    use fingerprint::FeatureSet;
    use polygraph_core::Detector;

    fn ua(vendor: Vendor, v: u32) -> UserAgent {
        UserAgent::new(vendor, v)
    }

    /// Era A at (0,0) for Chrome 100, era B at (10,10) for Chrome 110.
    fn training(base_a: f64) -> TrainingSet {
        let mut set = TrainingSet::new(2);
        for (base, u) in [
            (base_a, ua(Vendor::Chrome, 100)),
            (10.0, ua(Vendor::Chrome, 110)),
        ] {
            for j in 0..60 {
                set.push(vec![base + (j % 3) as f64 * 0.05, base], u)
                    .unwrap();
            }
        }
        set
    }

    fn config() -> OrchestratorConfig {
        OrchestratorConfig {
            train: TrainConfig {
                k: 2,
                n_components: 2,
                min_samples_for_majority: 1,
                ..Default::default()
            },
            min_accuracy: 0.95,
            keep_versions: 2,
            swap: SwapPolicy::PublishAndSwap,
            refit_epochs: 4,
            shadow: None,
        }
    }

    fn temp_registry(tag: &str) -> ModelRegistry {
        let dir =
            std::env::temp_dir().join(format!("polygraph-orch-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ModelRegistry::open(&dir).unwrap()
    }

    fn serving_model() -> TrainedModel {
        let fs = FeatureSet::table8().subset(&[0, 1]);
        TrainedModel::fit(fs, &training(0.0), config().train).unwrap()
    }

    #[test]
    fn stable_checkpoint_keeps_the_model() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let mut orch = Orchestrator::new(&server, temp_registry("stable"), config());
        // Chrome 111 ships with era-B features: stable.
        let mut fresh = training(0.0);
        for _ in 0..60 {
            fresh
                .push(vec![10.0, 10.0], ua(Vendor::Chrome, 111))
                .unwrap();
        }
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        assert!(matches!(outcome, RetrainOutcome::Stable { .. }));
        assert_eq!(server.stats().swaps, 0);
        assert_eq!(orch.registry().versions().unwrap(), Vec::<u64>::new());
        server.shutdown();
    }

    /// Regression for the POLY-L002 dogfooding fix: `checkpoint` must
    /// release the detector-slot read guard before the drift measurement
    /// runs (it clones the model out), so a writer — `swap_detector` —
    /// can take the slot while a measurement is in flight. Before the
    /// fix, the guard spanned the whole measurement and every
    /// `try_write` below would fail until the checkpoint finished.
    #[test]
    fn checkpoint_releases_the_detector_slot_before_measuring() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let mut orch = Orchestrator::new(&server, temp_registry("guard-scope"), config());
        // A large stable window: the measurement runs long enough for
        // the main thread to probe the slot, and Stable means no swap
        // interferes with the probe.
        let mut fresh = training(0.0);
        for j in 0..20_000 {
            fresh
                .push(
                    vec![10.0 + (j % 3) as f64 * 0.05, 10.0],
                    ua(Vendor::Chrome, 111),
                )
                .unwrap();
        }
        let checkpoints = server.registry().counter(metric_names::CHECKPOINTS);
        let done = AtomicBool::new(false);
        let acquired_mid_checkpoint = std::thread::scope(|scope| {
            scope.spawn(|| {
                let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
                assert!(matches!(outcome, RetrainOutcome::Stable { .. }));
                done.store(true, Ordering::SeqCst);
            });
            // Wait for the checkpoint to begin …
            while checkpoints.get() == 0 && !done.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            // … then take a write lock on the slot mid-measurement.
            let slot = server.detector_slot();
            let mut acquired = false;
            while !done.load(Ordering::SeqCst) {
                if let Some(guard) = slot.try_write() {
                    drop(guard);
                    acquired = true;
                    break;
                }
                std::thread::yield_now();
            }
            acquired
        });
        assert!(
            acquired_mid_checkpoint,
            "a writer must be able to take the detector slot while a drift \
             measurement is running"
        );
        server.shutdown();
    }

    /// Under `SwapPolicy::PublishOnly` a drift-triggered retrain still
    /// validates and publishes, but the serving detector is left to the
    /// fleet rollout: zero swaps, version in the registry.
    #[test]
    fn publish_only_checkpoint_publishes_without_swapping() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let registry = temp_registry("publish-only");
        let mut orch = Orchestrator::new(
            &server,
            registry,
            OrchestratorConfig {
                swap: SwapPolicy::PublishOnly,
                ..config()
            },
        );
        let mut fresh = training(0.0);
        for j in 0..80 {
            fresh
                .push(
                    vec![-0.5 + (j % 3) as f64 * 0.05, -0.5],
                    ua(Vendor::Chrome, 111),
                )
                .unwrap();
        }
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        assert!(matches!(
            outcome,
            RetrainOutcome::Retrained { version: 1, .. }
        ));
        assert_eq!(
            server.stats().swaps,
            0,
            "publish-only must not touch the serving detector"
        );
        assert_eq!(orch.registry().versions().unwrap(), vec![1]);
        server.shutdown();
    }

    #[test]
    fn drift_triggers_retrain_publish_and_swap() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let registry = temp_registry("retrain");
        let mut orch = Orchestrator::new(&server, registry, config());
        // Chrome 111 ships with a shape back near era A: its sessions land
        // in Chrome 100's cluster instead of its predecessor's — drift.
        let mut fresh = training(0.0);
        for j in 0..80 {
            fresh
                .push(
                    vec![-0.5 + (j % 3) as f64 * 0.05, -0.5],
                    ua(Vendor::Chrome, 111),
                )
                .unwrap();
        }
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        match outcome {
            RetrainOutcome::Retrained {
                triggers,
                version,
                accuracy,
            } => {
                assert_eq!(triggers, vec![ua(Vendor::Chrome, 111)]);
                assert_eq!(version, 1);
                assert!(accuracy > 0.95);
            }
            other => panic!("expected retrain, got {other:?}"),
        }
        assert_eq!(server.stats().swaps, 1);
        // The published model is loadable and knows the new release.
        let restored = orch.registry().load_latest().unwrap().expect("published");
        assert!(restored
            .cluster_table()
            .cluster_of(ua(Vendor::Chrome, 111))
            .is_some());
        // And the serving detector now accepts the new shape.
        let slot = server.detector_slot();
        let verdict = slot
            .read()
            .assess(&[-0.5, -0.5], ua(Vendor::Chrome, 111))
            .unwrap();
        assert!(!verdict.flagged, "after the swap the new shape is known");
        server.shutdown();
    }

    #[test]
    fn failed_validation_keeps_the_old_model() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let mut cfg = config();
        cfg.min_accuracy = 1.1; // impossible bar
        let mut orch = Orchestrator::new(&server, temp_registry("reject"), cfg);
        let mut fresh = training(0.0);
        for _ in 0..80 {
            fresh
                .push(vec![-0.5, -0.5], ua(Vendor::Chrome, 111))
                .unwrap();
        }
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        assert!(matches!(outcome, RetrainOutcome::RetrainRejected { .. }));
        assert_eq!(server.stats().swaps, 0);
        assert!(orch.registry().versions().unwrap().is_empty());
        server.shutdown();
    }

    /// Drift plus an unusable retrain window: `k` far exceeds the rows in
    /// the fresh set, so `fit_observed` errors after drift has already
    /// fired — the corrupt-collection-run scenario.
    fn drifting_but_unfittable() -> (TrainingSet, OrchestratorConfig) {
        let mut fresh = training(0.0);
        for _ in 0..80 {
            fresh
                .push(vec![-0.5, -0.5], ua(Vendor::Chrome, 111))
                .unwrap();
        }
        let mut cfg = config();
        cfg.train.k = 10_000;
        (fresh, cfg)
    }

    #[test]
    fn corrupt_window_falls_back_to_last_good_registry_model() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let registry = temp_registry("fallback");
        // Seed the registry with a known-good published model.
        let last_good = serving_model();
        registry.publish(&last_good).unwrap();
        let (fresh, cfg) = drifting_but_unfittable();
        let mut orch = Orchestrator::new(&server, registry, cfg);
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        match outcome {
            RetrainOutcome::Fallback {
                triggers,
                version,
                error,
            } => {
                assert_eq!(triggers, vec![ua(Vendor::Chrome, 111)]);
                assert_eq!(version, Some(1));
                assert!(error.contains("cannot support k="), "got: {error}");
            }
            other => panic!("expected fallback, got {other:?}"),
        }
        assert_eq!(server.stats().swaps, 1, "last-good model was re-asserted");
        // The serving detector is the registry model, not a half-trained
        // candidate: known shapes still assess cleanly.
        let slot = server.detector_slot();
        let verdict = slot
            .read()
            .assess(&[0.0, 0.0], ua(Vendor::Chrome, 100))
            .unwrap();
        assert!(!verdict.flagged);
        server.shutdown();
    }

    #[test]
    fn fallback_with_empty_registry_keeps_serving_in_memory_model() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let (fresh, cfg) = drifting_but_unfittable();
        let mut orch = Orchestrator::new(&server, temp_registry("fallback-empty"), cfg);
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        match outcome {
            RetrainOutcome::Fallback { version, .. } => assert_eq!(version, None),
            other => panic!("expected fallback, got {other:?}"),
        }
        assert_eq!(server.stats().swaps, 0, "nothing to fall back to: no swap");
        server.shutdown();
    }

    /// `min_compared: 0` lets these unit tests drive the gate without
    /// live traffic: an empty window counts as clean.
    fn shadow_config() -> OrchestratorConfig {
        OrchestratorConfig {
            shadow: Some(ShadowConfig {
                max_divergence: 0.05,
                required_checkpoints: 2,
                min_compared: 0,
            }),
            ..config()
        }
    }

    fn drifting_window() -> TrainingSet {
        let mut fresh = training(0.0);
        for j in 0..80 {
            fresh
                .push(
                    vec![-0.5 + (j % 3) as f64 * 0.05, -0.5],
                    ua(Vendor::Chrome, 111),
                )
                .unwrap();
        }
        fresh
    }

    #[test]
    fn shadow_gate_attaches_then_promotes_after_clean_checkpoints() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let mut orch = Orchestrator::new(&server, temp_registry("shadow-promote"), shadow_config());
        let fresh = drifting_window();

        // Drift: the candidate attaches as a shadow instead of publishing.
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        assert!(matches!(outcome, RetrainOutcome::ShadowStarted { .. }));
        assert!(server.shadow_attached());
        assert!(orch.shadow_in_flight());
        assert_eq!(
            orch.registry().versions().unwrap(),
            Vec::<u64>::new(),
            "a shadowing candidate must not be in the registry"
        );
        assert_eq!(server.stats().swaps, 0);
        assert_eq!(server.active_model_version(), 0);

        // First clean checkpoint: still pending.
        let outcome = orch.checkpoint(&fresh, &[]).unwrap();
        assert!(matches!(
            outcome,
            RetrainOutcome::ShadowPending {
                clean_checkpoints: 1,
                ..
            }
        ));
        assert!(server.shadow_attached());

        // Second clean checkpoint: promoted — versioned publish + swap.
        let outcome = orch.checkpoint(&fresh, &[]).unwrap();
        match outcome {
            RetrainOutcome::ShadowPromoted {
                version,
                checkpoints,
            } => {
                assert_eq!(version, 1);
                assert_eq!(checkpoints, 2);
            }
            other => panic!("expected promotion, got {other:?}"),
        }
        assert!(!server.shadow_attached());
        assert!(!orch.shadow_in_flight());
        assert_eq!(orch.registry().versions().unwrap(), vec![1]);
        assert_eq!(server.stats().swaps, 1);
        assert_eq!(server.active_model_version(), 1);
        server.shutdown();
    }

    #[test]
    fn diverging_shadow_is_rejected_without_publishing() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let mut cfg = shadow_config();
        cfg.shadow = Some(ShadowConfig {
            max_divergence: 0.05,
            required_checkpoints: 1,
            min_compared: 1,
        });
        let mut orch = Orchestrator::new(&server, temp_registry("shadow-reject"), cfg);
        let fresh = drifting_window();
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        assert!(matches!(outcome, RetrainOutcome::ShadowStarted { .. }));

        // Simulate a divergent traffic window by ticking the same
        // counters the serve path's shadow comparison ticks.
        let obs = server.registry();
        obs.counter(metric_names::SHADOW_COMPARED).add(100);
        obs.counter(metric_names::SHADOW_DIVERGED).add(50);

        let outcome = orch.checkpoint(&fresh, &[]).unwrap();
        match outcome {
            RetrainOutcome::ShadowRejected { compared, diverged } => {
                assert_eq!(compared, 100);
                assert_eq!(diverged, 50);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert!(!server.shadow_attached(), "rejected candidate detached");
        assert!(!orch.shadow_in_flight());
        assert_eq!(
            orch.registry().versions().unwrap(),
            Vec::<u64>::new(),
            "a rejected candidate must never be published"
        );
        assert_eq!(server.stats().swaps, 0);
        assert_eq!(obs.counter(metric_names::SHADOW_REJECTED).get(), 1);
        server.shutdown();
    }

    #[test]
    fn quiet_windows_keep_the_shadow_waiting() {
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving_model())).unwrap();
        let mut cfg = shadow_config();
        cfg.shadow = Some(ShadowConfig {
            min_compared: 5,
            ..ShadowConfig::default()
        });
        let mut orch = Orchestrator::new(&server, temp_registry("shadow-quiet"), cfg);
        let fresh = drifting_window();
        let outcome = orch.checkpoint(&fresh, &[ua(Vendor::Chrome, 111)]).unwrap();
        assert!(matches!(outcome, RetrainOutcome::ShadowStarted { .. }));

        // No traffic at all: the gate neither advances nor rejects.
        for _ in 0..3 {
            let outcome = orch.checkpoint(&fresh, &[]).unwrap();
            assert!(matches!(
                outcome,
                RetrainOutcome::ShadowPending {
                    compared: 0,
                    clean_checkpoints: 0,
                    ..
                }
            ));
            assert!(server.shadow_attached());
        }
        server.shutdown();
    }

    #[test]
    fn streaming_checkpoint_retrains_from_the_reservoir() {
        let serving = serving_model();
        let server = start_risk_server("127.0.0.1:0", Detector::new(serving.clone())).unwrap();
        let mut orch = Orchestrator::new(&server, temp_registry("stream"), config());
        let mut stream = DriftStream::new(512, 2, 7).unwrap();

        // Stable era: the training window plus Chrome 111 shipping with
        // era-B features — it lands in its predecessor's cluster.
        let stable = training(0.0);
        for (row, u) in stable.rows().iter().zip(stable.user_agents()) {
            stream.ingest(&serving, row, *u).unwrap();
        }
        for _ in 0..60 {
            stream
                .ingest(&serving, &[10.0, 10.0], ua(Vendor::Chrome, 111))
                .unwrap();
        }
        let outcome = orch
            .checkpoint_stream(&mut stream, &[ua(Vendor::Chrome, 111)])
            .unwrap();
        assert!(matches!(outcome, RetrainOutcome::Stable { .. }));
        assert_eq!(
            stream.window().materializations(),
            0,
            "a stable checkpoint must not copy the reservoir"
        );

        // Chrome 112 arrives with a drifted shape, back near era A.
        for j in 0..80 {
            stream
                .ingest(
                    &serving,
                    &[-0.5 + (j % 3) as f64 * 0.05, -0.5],
                    ua(Vendor::Chrome, 112),
                )
                .unwrap();
        }
        let outcome = orch
            .checkpoint_stream(&mut stream, &[ua(Vendor::Chrome, 112)])
            .unwrap();
        assert!(
            matches!(outcome, RetrainOutcome::Retrained { version: 1, .. }),
            "got {outcome:?}"
        );
        assert_eq!(server.stats().swaps, 1);
        assert_eq!(
            stream.window().materializations(),
            1,
            "exactly one reservoir copy, for the retrain itself"
        );
        assert_eq!(
            stream.accumulator().ingested(),
            0,
            "drift counters reset after the swap"
        );
        server.shutdown();
    }
}
