//! Principal Component Analysis (§6.4.2, Figure 2).
//!
//! Fits on centred data via the covariance matrix's eigendecomposition.
//! `explained_variance_ratio` and [`Pca::cumulative_variance`] regenerate
//! the curve of the paper's Figure 2, where 7 components capture >98.5% of
//! the variance of the 28-feature dataset.

use crate::eigen::symmetric_eigen;
use crate::error::MlError;
use crate::matrix::Matrix;
use crate::pool::ThreadPool;
use serde::{Deserialize, Serialize};

/// A fitted PCA transform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pca {
    /// Column means subtracted before projection.
    means: Vec<f64>,
    /// Projection matrix: one principal axis per *column*
    /// (`n_features x n_components`).
    components: Matrix,
    /// Eigenvalues of the retained components, descending.
    explained_variance: Vec<f64>,
    /// Fraction of total variance captured by each retained component.
    explained_variance_ratio: Vec<f64>,
}

impl Pca {
    /// Fits PCA on `x`, keeping `n_components` components.
    ///
    /// `n_components` must be in `1..=x.cols()`.
    pub fn fit(x: &Matrix, n_components: usize) -> Result<Self, MlError> {
        Self::fit_with_pool(x, n_components, &ThreadPool::serial())
    }

    /// [`Pca::fit`] with the covariance accumulation run on a thread pool.
    ///
    /// The eigendecomposition itself is sequential (it is `O(cols^3)` on a
    /// few dozen columns — negligible next to the `O(rows * cols^2)`
    /// covariance pass), so the fit stays bit-identical to the serial one.
    pub fn fit_with_pool(
        x: &Matrix,
        n_components: usize,
        pool: &ThreadPool,
    ) -> Result<Self, MlError> {
        if n_components == 0 || n_components > x.cols() {
            return Err(MlError::InvalidParameter {
                name: "n_components",
                reason: format!("must be in 1..={}, got {n_components}", x.cols()),
            });
        }
        let means = x.col_means();
        let cov = x.covariance_with_pool(pool)?;
        let eig = symmetric_eigen(&cov)?;
        // Covariance eigenvalues are >= 0 up to round-off; clamp the noise.
        let values: Vec<f64> = eig.values.iter().map(|&v| v.max(0.0)).collect();
        let total: f64 = values.iter().sum();
        let ratios: Vec<f64> = if total > 0.0 {
            values.iter().map(|v| v / total).collect()
        } else {
            vec![0.0; values.len()]
        };

        let keep: Vec<usize> = (0..n_components).collect();
        let components = eig.vectors.select_columns(&keep)?;
        Ok(Self {
            means,
            components,
            explained_variance: values[..n_components].to_vec(),
            explained_variance_ratio: ratios[..n_components].to_vec(),
        })
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.cols()
    }

    /// Number of input features expected by [`Pca::transform`].
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Column means subtracted before projection.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Principal axes as columns (`n_features x n_components`).
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Variance (eigenvalue) captured per retained component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured per retained component.
    pub fn explained_variance_ratio(&self) -> &[f64] {
        &self.explained_variance_ratio
    }

    /// Cumulative explained-variance curve (the series plotted in Figure 2).
    pub fn cumulative_variance(&self) -> Vec<f64> {
        self.explained_variance_ratio
            .iter()
            .scan(0.0, |acc, &r| {
                *acc += r;
                Some(*acc)
            })
            .collect()
    }

    /// Projects a matrix into component space (`rows x n_components`).
    pub fn transform(&self, x: &Matrix) -> Result<Matrix, MlError> {
        if x.cols() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                got: x.cols(),
                expected: self.means.len(),
                what: "columns",
            });
        }
        let mut centred = x.clone();
        for r in 0..centred.rows() {
            let row = centred.row_mut(r);
            for (v, &m) in row.iter_mut().zip(&self.means) {
                *v -= m;
            }
        }
        centred.matmul(&self.components)
    }

    /// Projects a single sample.
    pub fn transform_row(&self, row: &[f64]) -> Result<Vec<f64>, MlError> {
        if row.len() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                got: row.len(),
                expected: self.means.len(),
                what: "row length",
            });
        }
        let centred: Vec<f64> = row.iter().zip(&self.means).map(|(&v, &m)| v - m).collect();
        let mut out = vec![0.0; self.components.cols()];
        for (i, &c) in centred.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            for (j, o) in out.iter_mut().enumerate() {
                *o += c * self.components[(i, j)];
            }
        }
        Ok(out)
    }

    /// Maps a point in component space back to feature space:
    /// `x̂ = components · z + means`.
    ///
    /// With fewer components than features this is the least-squares
    /// reconstruction; composing it with [`Pca::transform_row`] recovers the
    /// input exactly only at full rank.
    pub fn inverse_transform_row(&self, z: &[f64]) -> Result<Vec<f64>, MlError> {
        if z.len() != self.components.cols() {
            return Err(MlError::DimensionMismatch {
                got: z.len(),
                expected: self.components.cols(),
                what: "component count",
            });
        }
        let mut out = self.means.clone();
        for (i, o) in out.iter_mut().enumerate() {
            for (j, &zj) in z.iter().enumerate() {
                *o += self.components[(i, j)] * zj;
            }
        }
        Ok(out)
    }

    /// Computes the full explained-variance-ratio spectrum of `x` without
    /// retaining a transform — the cheap way to draw Figure 2 for every
    /// candidate component count at once.
    pub fn variance_spectrum(x: &Matrix) -> Result<Vec<f64>, MlError> {
        let cov = x.covariance()?;
        let eig = symmetric_eigen(&cov)?;
        let values: Vec<f64> = eig.values.iter().map(|&v| v.max(0.0)).collect();
        let total: f64 = values.iter().sum();
        if total == 0.0 {
            return Ok(vec![0.0; values.len()]);
        }
        Ok(values.iter().map(|v| v / total).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a 2-D dataset stretched along the (1,1) diagonal with small
    /// orthogonal noise, so the first principal axis is known.
    fn diagonal_cloud() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..40 {
            let t = i as f64 - 20.0;
            let noise = if i % 2 == 0 { 0.1 } else { -0.1 };
            rows.push(vec![t + noise, t - noise]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn first_component_captures_dominant_axis() {
        let x = diagonal_cloud();
        let pca = Pca::fit(&x, 2).unwrap();
        let r = pca.explained_variance_ratio();
        assert!(r[0] > 0.99, "first component should dominate, got {}", r[0]);
        let cum = pca.cumulative_variance();
        assert!((cum[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transform_projects_onto_diagonal() {
        let x = diagonal_cloud();
        let pca = Pca::fit(&x, 1).unwrap();
        let t = pca.transform(&x).unwrap();
        assert_eq!(t.cols(), 1);
        // Projection of (t, t) onto the unit diagonal has magnitude |t|*sqrt(2);
        // the first sample sits at t = -20 and the cloud mean at t = -0.5.
        let first = t[(0, 0)].abs();
        assert!((first - 19.5 * std::f64::consts::SQRT_2).abs() < 0.5);
    }

    #[test]
    fn invalid_component_counts_rejected() {
        let x = diagonal_cloud();
        assert!(Pca::fit(&x, 0).is_err());
        assert!(Pca::fit(&x, 3).is_err());
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let x = diagonal_cloud();
        let pca = Pca::fit(&x, 2).unwrap();
        let t = pca.transform(&x).unwrap();
        for (i, row) in x.iter_rows().enumerate() {
            let tr = pca.transform_row(row).unwrap();
            for (a, b) in tr.iter().zip(t.row(i)) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn full_rank_inverse_transform_round_trips() {
        let x = diagonal_cloud();
        let pca = Pca::fit(&x, 2).unwrap();
        for row in x.iter_rows() {
            let z = pca.transform_row(row).unwrap();
            let back = pca.inverse_transform_row(&z).unwrap();
            for (a, b) in row.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
        assert!(pca.inverse_transform_row(&[1.0]).is_err());
    }

    #[test]
    fn pool_fit_matches_serial_bit_for_bit() {
        let x = diagonal_cloud();
        let serial = Pca::fit(&x, 2).unwrap();
        for threads in [2, 8] {
            let par = Pca::fit_with_pool(&x, 2, &ThreadPool::new(threads)).unwrap();
            assert_eq!(serial.means, par.means);
            assert_eq!(serial.components, par.components);
            for (s, p) in serial
                .explained_variance
                .iter()
                .zip(&par.explained_variance)
            {
                assert_eq!(s.to_bits(), p.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn variance_spectrum_sums_to_one() {
        let x = diagonal_cloud();
        let spec = Pca::variance_spectrum(&x).unwrap();
        let sum: f64 = spec.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_data_yields_zero_spectrum() {
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let spec = Pca::variance_spectrum(&x).unwrap();
        assert!(spec.iter().all(|&v| v == 0.0));
    }

    proptest! {
        #[test]
        fn prop_cumulative_variance_monotone_and_bounded(
            seed in any::<u64>(), rows in 5usize..30
        ) {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 10.0
            };
            let data: Vec<Vec<f64>> = (0..rows)
                .map(|_| vec![next(), next(), next(), next()])
                .collect();
            let x = Matrix::from_rows(&data).unwrap();
            let pca = Pca::fit(&x, 4).unwrap();
            let cum = pca.cumulative_variance();
            for w in cum.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-12);
            }
            prop_assert!(cum.last().copied().unwrap_or(0.0) <= 1.0 + 1e-9);
        }

        #[test]
        fn prop_reconstruction_error_monotone_in_component_count(
            seed in any::<u64>()
        ) {
            // Retaining more principal components can only explain more
            // variance, so the total squared reconstruction error must be
            // non-increasing as the component count grows.
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 10.0
            };
            let data: Vec<Vec<f64>> = (0..30)
                .map(|_| vec![next(), next(), next(), next()])
                .collect();
            let x = Matrix::from_rows(&data).unwrap();
            let mut prev = f64::INFINITY;
            for n in 1..=4usize {
                let pca = Pca::fit(&x, n).unwrap();
                let err: f64 = x.iter_rows().map(|row| {
                    let z = pca.transform_row(row).unwrap();
                    let back = pca.inverse_transform_row(&z).unwrap();
                    Matrix::sq_dist(row, &back)
                }).sum();
                prop_assert!(
                    err <= prev + 1e-6,
                    "reconstruction error rose at n={}: {} -> {}", n, prev, err
                );
                prev = err;
            }
            // Full rank reconstructs exactly (up to round-off).
            prop_assert!(prev < 1e-6);
        }

        #[test]
        fn prop_projection_preserves_total_variance_with_full_rank(
            seed in any::<u64>()
        ) {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 10.0
            };
            let data: Vec<Vec<f64>> = (0..25).map(|_| vec![next(), next(), next()]).collect();
            let x = Matrix::from_rows(&data).unwrap();
            let pca = Pca::fit(&x, 3).unwrap();
            let t = pca.transform(&x).unwrap();
            let orig_var: f64 = x.covariance().unwrap().as_slice().iter().enumerate()
                .filter(|(i, _)| i % 4 == 0) // diagonal of a 3x3
                .map(|(_, &v)| v).sum();
            let proj_var: f64 = t.covariance().unwrap().as_slice().iter().enumerate()
                .filter(|(i, _)| i % 4 == 0)
                .map(|(_, &v)| v).sum();
            prop_assert!((orig_var - proj_var).abs() < 1e-6 * orig_var.max(1.0));
        }
    }
}
