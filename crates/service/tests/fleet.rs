//! Fleet failover and rollout invariants.
//!
//! The fleet layer must behave, observably, like one big risk server:
//! the merged verdict stream is byte-identical at every node count, a
//! killed node moves *only its own* key ranges to the next ring node,
//! every surviving node's cache books stay balanced through a storm, and
//! a model being rolled out canary → 50% → full is never allowed to
//! answer on a node the rollout has not reached.

mod common;

use browser_engine::{UserAgent, Vendor};
use common::for_each_backend;
use fingerprint::{encode_submission, submission_cache_key, FeatureSet, Submission};
use polygraph_core::{TrainConfig, TrainedModel, TrainingSet};
use polygraph_service::fleet::metric_names as fleet_metrics;
use polygraph_service::{
    start_chaos_proxy, FaultConfig, FaultPlan, FleetClient, FleetConfig, ModelRegistry, RiskClient,
    RiskClientConfig, RiskFleet, RiskServerConfig, RolloutController, RolloutStage, RolloutStep,
    VerdictStatus,
};
use std::sync::Arc;
use std::time::Duration;

const CHAOS_SEED: u64 = 0xB10B;

/// Two-feature, two-cluster model: `base60` is where Chrome 60's era
/// clusters, `base100` where Chrome 100's does. Swapping the bases swaps
/// every claim-verification outcome — a maximally divergent "v2".
fn tiny_model_with(base60: f64, base100: f64) -> TrainedModel {
    let mut set = TrainingSet::new(2);
    for (base, ua) in [
        (base60, UserAgent::new(Vendor::Chrome, 60)),
        (base100, UserAgent::new(Vendor::Chrome, 100)),
    ] {
        for j in 0..40 {
            set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                .unwrap();
        }
    }
    let fs = FeatureSet::table8().subset(&[0, 1]);
    let config = TrainConfig {
        k: 2,
        n_components: 2,
        min_samples_for_majority: 1,
        ..Default::default()
    };
    TrainedModel::fit(fs, &set, config).unwrap()
}

fn tiny_model() -> TrainedModel {
    tiny_model_with(0.0, 10.0)
}

/// Deterministic storm traffic: even `j` are honest Chrome 100 sessions
/// (values near the era-B centroid, expected unflagged), odd `j` lie
/// (era-A values under a Chrome 100 claim, expected flagged). Values
/// vary with `j` so the storm spreads over many cache keys.
fn storm_submission(j: u64) -> (Submission, bool) {
    let honest = j.is_multiple_of(2);
    let (a, b) = if honest {
        (8 + (j % 5) as u32, 9 + ((j / 2) % 4) as u32)
    } else {
        ((j % 4) as u32, ((j / 3) % 3) as u32)
    };
    let mut session_id = [0u8; 16];
    session_id[..8].copy_from_slice(&j.to_le_bytes());
    let sub = Submission {
        session_id,
        user_agent: UserAgent::new(Vendor::Chrome, 100).to_ua_string(),
        values: vec![a, b],
    };
    (sub, !honest)
}

fn fleet_client_config() -> RiskClientConfig {
    RiskClientConfig {
        request_timeout: Duration::from_millis(500),
        max_retries: 0, // fail over along the ring instead of retrying in place
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(10),
        retry_seed: CHAOS_SEED,
    }
}

fn cached_node_config(base: RiskServerConfig) -> RiskServerConfig {
    RiskServerConfig {
        cache_shards: 4,
        cache_capacity: 1024,
        ..base
    }
}

fn temp_registry(tag: &str) -> ModelRegistry {
    let dir =
        std::env::temp_dir().join(format!("polygraph-fleet-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ModelRegistry::open(&dir).unwrap()
}

/// `cache.hits + cache.misses == assessed + malformed + shed_exempt` on
/// one node — every frame the node accepted is accounted exactly once.
fn assert_books_balanced(fleet: &RiskFleet, node: usize, context: &str) {
    let stats = fleet.node_stats(node).expect("node is alive");
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        stats.assessed + stats.malformed + stats.cache_shed_exempt,
        "[{context}] node {node} books out of balance: {stats:?}"
    );
}

/// The fleet is observably one server: replaying the identical storm
/// through 1-, 2-, and 3-node fleets (both connection backends) yields
/// byte-identical verdicts frame for frame.
#[test]
fn merged_verdict_stream_is_identical_across_node_counts() {
    const FRAMES: u64 = 200;
    for_each_backend(|config, backend| {
        let model = tiny_model();
        let mut streams: Vec<Vec<[u8; 8]>> = Vec::new();
        for nodes in [1usize, 2, 3] {
            let fleet = RiskFleet::start(
                &model,
                FleetConfig {
                    nodes,
                    node: cached_node_config(config.clone()),
                    ..Default::default()
                },
            )
            .unwrap();
            let mut client = FleetClient::connect(&fleet, fleet_client_config());
            let mut verdicts = Vec::with_capacity(FRAMES as usize);
            for j in 0..FRAMES {
                let (sub, expect_flagged) = storm_submission(j);
                let v = client.assess_submission(&sub).unwrap();
                assert_eq!(v.status, VerdictStatus::Assessed);
                assert_eq!(
                    v.flagged, expect_flagged,
                    "[{backend}] wrong verdict at frame {j} on {nodes} nodes"
                );
                verdicts.push(v.encode());
            }
            for node in 0..fleet.node_count() {
                assert_books_balanced(&fleet, node, backend);
            }
            streams.push(verdicts);
            drop(client);
            fleet.shutdown();
        }
        let first = streams.first().unwrap();
        for (i, stream) in streams.iter().enumerate() {
            assert_eq!(
                stream, first,
                "[{backend}] merged stream at node-count leg {i} diverged"
            );
        }
    });
}

/// Satellite: seeded storm with one node killed at each rollout stage.
/// Every surviving node keeps its books balanced, no verdict is garbage
/// fleet-wide, and each live node receives exactly the keys the ring
/// (minus the dead node) assigns it — reassignment touches only the dead
/// node's keys.
#[test]
fn storm_with_a_node_killed_at_each_rollout_stage_keeps_books_balanced() {
    const FRAMES: u64 = 120;
    const NODES: usize = 3;
    // Stage 0: kill before any promotion; stage 1: after canary; stage
    // 2: after half; stage 3: after full coverage.
    for advances_before_kill in 0..=3usize {
        let context = format!("kill after {advances_before_kill} advances");
        let model = tiny_model();
        let registry = temp_registry(&format!("stage{advances_before_kill}"));
        // The "new" model is behaviourally identical (same training
        // data), so mid-rollout mixed fleets still agree on verdicts —
        // the storm can assert exact flags at every stage.
        let version = registry.publish(&tiny_model()).unwrap();
        let mut fleet = RiskFleet::start(
            &model,
            FleetConfig {
                nodes: NODES,
                node: cached_node_config(RiskServerConfig::default()),
                ..Default::default()
            },
        )
        .unwrap();
        let mut rollout = RolloutController::new(&registry, Vec::new(), 0.0).unwrap();
        for _ in 0..advances_before_kill {
            match rollout.advance(&fleet) {
                RolloutStep::Promoted { .. } | RolloutStep::Complete => {}
                RolloutStep::Blocked { .. } => panic!("[{context}] identical model blocked"),
            }
        }
        let victim = advances_before_kill % NODES;
        assert!(fleet.kill_node(victim), "[{context}] victim already dead");
        let live = fleet.live();

        // Replay the storm through the router-aware client and work out,
        // frame by frame, which live node the ring assigns each key to —
        // and how many keys the dead node would have owned.
        let mut expected_frames = [0u64; NODES];
        let mut victim_owned = 0u64;
        let mut client = FleetClient::connect(&fleet, fleet_client_config());
        for j in 0..FRAMES {
            let (sub, expect_flagged) = storm_submission(j);
            let frame = encode_submission(&sub).unwrap();
            let key = submission_cache_key(&frame).unwrap();
            if fleet.router().route(key) == victim {
                victim_owned += 1;
            }
            let owner = fleet.router().route_live(key, &live).unwrap();
            expected_frames[owner] += 1;
            let v = client
                .assess_submission(&sub)
                .unwrap_or_else(|e| panic!("[{context}] frame {j} failed fleet-wide: {e}"));
            assert_eq!(
                v.status,
                VerdictStatus::Assessed,
                "[{context}] garbage verdict for frame {j} (seed {CHAOS_SEED:#x})"
            );
            assert_eq!(v.flagged, expect_flagged, "[{context}] wrong flag at {j}");
        }

        for (node, &expected) in expected_frames.iter().enumerate() {
            if node == victim {
                assert!(fleet.node_stats(node).is_none());
                continue;
            }
            assert_books_balanced(&fleet, node, &context);
            let stats = fleet.node_stats(node).unwrap();
            assert_eq!(
                stats.cache_hits + stats.cache_misses,
                expected,
                "[{context}] node {node} served keys the ring does not assign it"
            );
        }

        // Exactly the dead node's keys hop — once each (connection
        // refused on the dead owner, answered by the next ring node) —
        // and no other key ever fails over.
        let snapshot = fleet.obs().snapshot();
        let failovers = snapshot
            .counters
            .get(fleet_metrics::FAILOVERS)
            .copied()
            .unwrap_or(0);
        assert_eq!(
            failovers, victim_owned,
            "[{context}] failover hops must match the dead node's key count"
        );
        assert_eq!(
            snapshot
                .counters
                .get(fleet_metrics::EXHAUSTED)
                .copied()
                .unwrap_or(0),
            0,
            "[{context}] no frame may fail on every node"
        );

        // The rollout completes around the failure: every surviving node
        // ends on the published version.
        loop {
            match rollout.advance(&fleet) {
                RolloutStep::Complete => break,
                RolloutStep::Promoted { .. } => {}
                RolloutStep::Blocked { .. } => panic!("[{context}] identical model blocked"),
            }
        }
        for node in 0..NODES {
            if node == victim {
                continue;
            }
            assert_eq!(
                fleet.node(node).unwrap().active_model_version(),
                version,
                "[{context}] live node {node} missed the rollout"
            );
        }
        drop(client);
        fleet.shutdown();
    }
}

/// Tentpole invariant: during a staged rollout of a *behaviourally
/// different* v2, a frame is never answered by v2 on a node the rollout
/// has not reached — probed directly on every node after every stage.
#[test]
fn v2_never_answers_on_a_node_the_rollout_has_not_reached() {
    const NODES: usize = 4;
    let v1 = tiny_model();
    let registry = temp_registry("v2-stages");
    // v2 swaps the eras: the probe below (era-A values claiming Chrome
    // 60) is unflagged under v1, flagged under v2.
    let version = registry.publish(&tiny_model_with(10.0, 0.0)).unwrap();
    let probe = Submission {
        session_id: [9u8; 16],
        user_agent: UserAgent::new(Vendor::Chrome, 60).to_ua_string(),
        values: vec![0, 0],
    };
    let fleet = RiskFleet::start(
        &v1,
        FleetConfig {
            nodes: NODES,
            ..Default::default()
        },
    )
    .unwrap();
    // The sample *does* diverge; the wide budget lets promotion proceed
    // while the per-node counters record the divergence.
    let sample = vec![(vec![0.0, 0.0], UserAgent::new(Vendor::Chrome, 60))];
    let mut rollout = RolloutController::new(&registry, sample, 1.0).unwrap();
    assert_eq!(rollout.version(), version);

    let probe_all = |fleet: &RiskFleet, covered: usize, stage: &str| {
        for node in 0..NODES {
            let mut client = RiskClient::connect(fleet.addr(node).unwrap()).unwrap();
            let v = client.assess_submission(&probe).unwrap();
            let on_v2 = node < covered;
            assert_eq!(
                v.flagged,
                on_v2,
                "[{stage}] node {node}: expected {} model, got the other one",
                if on_v2 { "v2" } else { "v1" }
            );
            assert_eq!(
                fleet.node(node).unwrap().active_model_version(),
                if on_v2 { version } else { 0 },
                "[{stage}] node {node} version tag out of step"
            );
        }
    };

    probe_all(&fleet, 0, "before rollout");
    for (expect_stage, expect_covered) in [
        (RolloutStage::Canary, 1usize),
        (RolloutStage::Half, 2),
        (RolloutStage::Full, NODES),
    ] {
        match rollout.advance(&fleet) {
            RolloutStep::Promoted { stage, .. } => assert_eq!(stage, expect_stage),
            other => panic!("expected promotion to {expect_stage:?}, got {other:?}"),
        }
        assert_eq!(rollout.covered_nodes(), expect_covered);
        probe_all(&fleet, expect_covered, &format!("{expect_stage:?}"));
    }
    assert!(matches!(rollout.advance(&fleet), RolloutStep::Complete));

    // The divergence the gate measured is on the books, per node.
    let snapshot = fleet.obs().snapshot();
    for node in 0..NODES {
        assert_eq!(
            snapshot.counters.get(&fleet_metrics::compared(node)),
            Some(&1),
            "node {node} comparison missing"
        );
        assert_eq!(
            snapshot.counters.get(&fleet_metrics::diverged(node)),
            Some(&1),
            "node {node} divergence not recorded"
        );
    }
    fleet.shutdown();
}

/// A zero-tolerance divergence budget blocks the very first promotion:
/// every node keeps serving v1 and the canary is never swapped.
#[test]
fn divergence_gate_blocks_a_diverging_canary() {
    let registry = temp_registry("gate-blocks");
    registry.publish(&tiny_model_with(10.0, 0.0)).unwrap();
    let fleet = RiskFleet::start(
        &tiny_model(),
        FleetConfig {
            nodes: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let sample = vec![(vec![0.0, 0.0], UserAgent::new(Vendor::Chrome, 60))];
    let mut rollout = RolloutController::new(&registry, sample, 0.0).unwrap();
    match rollout.advance(&fleet) {
        RolloutStep::Blocked {
            stage,
            node,
            diverged,
            compared,
        } => {
            assert_eq!(stage, RolloutStage::Canary);
            assert_eq!(node, 0);
            assert_eq!((diverged, compared), (1, 1));
        }
        other => panic!("expected the gate to block, got {other:?}"),
    }
    assert_eq!(rollout.covered_nodes(), 0);
    for node in 0..2 {
        assert_eq!(fleet.node(node).unwrap().active_model_version(), 0);
        let mut client = RiskClient::connect(fleet.addr(node).unwrap()).unwrap();
        let probe = Submission {
            session_id: [3u8; 16],
            user_agent: UserAgent::new(Vendor::Chrome, 60).to_ua_string(),
            values: vec![0, 0],
        };
        assert!(
            !client.assess_submission(&probe).unwrap().flagged,
            "node {node} must still serve v1"
        );
    }
    fleet.shutdown();
}

/// Chaos: a node stalled past the client deadline (not killed — its
/// socket accepts, then hangs) must fail over along the ring exactly
/// like a dead one, with zero garbage verdicts and balanced books on
/// the healthy node.
#[test]
fn stalled_node_fails_over_along_the_ring() {
    const FRAMES: u64 = 30;
    let model = tiny_model();
    let fleet = RiskFleet::start(
        &model,
        FleetConfig {
            nodes: 2,
            node: cached_node_config(RiskServerConfig::default()),
            ..Default::default()
        },
    )
    .unwrap();
    // Interpose a stall-everything proxy in front of node 0.
    let stall_all = FaultConfig {
        stall_per_mille: 1000,
        stall: Duration::from_millis(400),
        ..FaultConfig::none()
    };
    let proxy = start_chaos_proxy(
        fleet.addr(0).unwrap(),
        FaultPlan::symmetric(CHAOS_SEED, stall_all),
    )
    .unwrap();
    let addrs = vec![proxy.local_addr(), fleet.addr(1).unwrap()];
    let mut client = FleetClient::from_addrs(
        addrs,
        fleet.router().clone(),
        RiskClientConfig {
            request_timeout: Duration::from_millis(100),
            ..fleet_client_config()
        },
        Arc::clone(fleet.obs()),
    );

    let mut node0_keys = 0u64;
    for j in 0..FRAMES {
        let (sub, expect_flagged) = storm_submission(j);
        let frame = encode_submission(&sub).unwrap();
        let key = submission_cache_key(&frame).unwrap();
        if fleet.router().route(key) == 0 {
            node0_keys += 1;
        }
        let v = client.assess_submission(&sub).unwrap();
        assert_eq!(
            v.status,
            VerdictStatus::Assessed,
            "garbage verdict for frame {j} through the stall (seed {CHAOS_SEED:#x})"
        );
        assert_eq!(v.flagged, expect_flagged, "wrong flag at frame {j}");
    }
    assert!(
        node0_keys > 0,
        "storm never touched the stalled node's keys"
    );

    let snapshot = fleet.obs().snapshot();
    let failovers = snapshot
        .counters
        .get(fleet_metrics::FAILOVERS)
        .copied()
        .unwrap_or(0);
    assert!(
        failovers >= node0_keys,
        "every stalled-owner key must hop: {failovers} hops for {node0_keys} keys"
    );
    // The healthy node absorbed the whole storm with balanced books; the
    // stalled node never completed an exchange, so its books are empty
    // *and* balanced.
    for node in 0..2 {
        assert_books_balanced(&fleet, node, "stall");
    }
    let healthy = fleet.node_stats(1).unwrap();
    assert_eq!(healthy.cache_hits + healthy.cache_misses, FRAMES);
    proxy.shutdown();
    drop(client);
    fleet.shutdown();
}
