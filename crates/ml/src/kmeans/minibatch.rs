//! Mini-batch k-means (Sculley, WWW 2010) for the streaming retrain path.
//!
//! The paper's §6.6 drift story refits the full window from scratch; the
//! streaming pipeline instead keeps a live candidate that absorbs the
//! reservoir window one seeded mini-batch epoch per checkpoint. Each
//! batch freezes the centroids, assigns its points, and then applies the
//! per-center learning-rate update `c ← c + (1/count)(x − c)` in batch
//! order — with `batch_size == n` and zero prior counts this is exactly
//! one Lloyd iteration (the running mean of each cluster's batch
//! members), which the property tests pin.
//!
//! Determinism follows the same discipline as the full fit: batch order
//! is a ChaCha-seeded permutation derived from `(seed, epoch)`, and
//! [`MiniBatchKMeans::step_with_pool`] is bit-identical to the serial
//! [`MiniBatchKMeans::step`] because only the embarrassingly parallel
//! frozen-centroid assignment runs on the pool (in fixed
//! [`ROW_CHUNK`]-order), while the stateful centroid updates always
//! apply sequentially in batch order.

use super::{kmeans_pp_init, nearest_centroid, wcss_of, KMeans};
use crate::error::MlError;
use crate::matrix::Matrix;
use crate::pool::{ThreadPool, ROW_CHUNK};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration for a [`MiniBatchKMeans`] run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MiniBatchConfig {
    /// Number of clusters.
    pub k: usize,
    /// Points per mini-batch. `batch_size >= n` degenerates to one full
    /// Lloyd-style pass per epoch.
    pub batch_size: usize,
    /// RNG seed for the k-means++ init and the per-epoch batch order.
    pub seed: u64,
}

impl MiniBatchConfig {
    /// A default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            batch_size: 256,
            seed: 0x9e3779b9,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the mini-batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    fn validate(&self) -> Result<(), MlError> {
        if self.k == 0 {
            return Err(MlError::InvalidParameter {
                name: "k",
                reason: "must be at least 1".into(),
            });
        }
        if self.batch_size == 0 {
            return Err(MlError::InvalidParameter {
                name: "batch_size",
                reason: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// An incrementally trained k-means model.
///
/// Unlike [`KMeans::fit`] this type is a *state*: centroids plus the
/// per-center update counts that act as decaying learning rates. Feed it
/// epochs of the current training window with [`MiniBatchKMeans::step`]
/// and freeze it into a servable [`KMeans`] with
/// [`MiniBatchKMeans::into_kmeans`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MiniBatchKMeans {
    config: MiniBatchConfig,
    centroids: Matrix,
    /// Per-center update counts; `1/counts[c]` is center `c`'s current
    /// learning rate.
    counts: Vec<u64>,
    /// Epochs absorbed so far; also salts each epoch's batch order.
    epochs: u64,
}

impl MiniBatchKMeans {
    /// Seeds a fresh model with k-means++ on `x`.
    pub fn init(x: &Matrix, config: MiniBatchConfig) -> Result<Self, MlError> {
        config.validate()?;
        if config.k > x.rows() {
            return Err(MlError::InvalidParameter {
                name: "k",
                reason: format!("k={} exceeds the {} samples", config.k, x.rows()),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let centroids = kmeans_pp_init(x, config.k, &mut rng);
        Ok(Self {
            counts: vec![0; config.k],
            config,
            centroids,
            epochs: 0,
        })
    }

    /// Warm-starts from existing centroids (e.g. the serving model's),
    /// with zeroed counts so the first batch moves centers aggressively.
    pub fn warm_start(centroids: Matrix, config: MiniBatchConfig) -> Result<Self, MlError> {
        config.validate()?;
        if centroids.rows() != config.k {
            return Err(MlError::InvalidParameter {
                name: "k",
                reason: format!(
                    "k={} does not match the {} warm-start centroids",
                    config.k,
                    centroids.rows()
                ),
            });
        }
        Ok(Self {
            counts: vec![0; config.k],
            config,
            centroids,
            epochs: 0,
        })
    }

    /// One epoch of mini-batch updates over `x`, serially.
    ///
    /// The epoch visits every row exactly once in a seeded
    /// without-replacement order and returns the number of batches
    /// applied.
    pub fn step(&mut self, x: &Matrix) -> Result<usize, MlError> {
        self.step_with_pool(x, &ThreadPool::serial())
    }

    /// [`MiniBatchKMeans::step`] on a thread pool, bit-identical to the
    /// serial path: each batch's frozen-centroid assignment folds over
    /// fixed [`ROW_CHUNK`] boundaries in chunk order, and the centroid
    /// updates always apply sequentially in batch order.
    pub fn step_with_pool(&mut self, x: &Matrix, pool: &ThreadPool) -> Result<usize, MlError> {
        if x.cols() != self.centroids.cols() {
            return Err(MlError::DimensionMismatch {
                got: x.cols(),
                expected: self.centroids.cols(),
                what: "columns",
            });
        }
        if x.rows() == 0 {
            return Err(MlError::InvalidParameter {
                name: "rows",
                reason: "mini-batch epoch needs at least one sample".into(),
            });
        }
        // Each epoch draws its own permutation stream so consecutive
        // epochs see different batch orders while the whole run replays
        // from `config.seed` alone.
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed.wrapping_add(self.epochs));
        let mut order: Vec<usize> = (0..x.rows()).collect();
        order.shuffle(&mut rng);

        let mut batches = 0usize;
        for batch in order.chunks(self.config.batch_size) {
            // Assignment under frozen centroids — the parallel part.
            let assignment: Vec<usize> = pool
                .run_chunks(batch.len(), ROW_CHUNK, |lo, hi| {
                    (lo..hi)
                        .map(|j| nearest_centroid(x.row(batch[j]), &self.centroids).0)
                        .collect::<Vec<usize>>()
                })
                .into_iter()
                .flatten()
                .collect();
            // Per-center learning-rate updates — always sequential, in
            // batch order, so pool width cannot change the result.
            for (&row_idx, &c) in batch.iter().zip(&assignment) {
                self.counts[c] += 1;
                let eta = 1.0 / self.counts[c] as f64;
                for (ctr, &v) in self.centroids.row_mut(c).iter_mut().zip(x.row(row_idx)) {
                    *ctr += eta * (v - *ctr);
                }
            }
            batches += 1;
        }
        self.epochs += 1;
        Ok(batches)
    }

    /// Current centroids.
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Per-center update counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Epochs absorbed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Freezes the state into a servable [`KMeans`], scoring WCSS on `x`.
    pub fn into_kmeans(self, x: &Matrix, pool: &ThreadPool) -> Result<KMeans, MlError> {
        if x.cols() != self.centroids.cols() {
            return Err(MlError::DimensionMismatch {
                got: x.cols(),
                expected: self.centroids.cols(),
                what: "columns",
            });
        }
        let wcss = wcss_of(x, &self.centroids, pool);
        Ok(KMeans {
            wcss,
            iterations: self.epochs as usize,
            centroids: self.centroids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        for &(cx, cy) in &centers {
            for i in 0..20 {
                rows.push(vec![cx + (i % 5) as f64 * 0.1, cy + (i / 5) as f64 * 0.1]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    /// One Lloyd update (assign under frozen centroids, then replace each
    /// populated center with the mean of its members) with no
    /// empty-cluster reseeding — the closed form a full-window mini-batch
    /// epoch must reproduce.
    fn one_lloyd_update(x: &Matrix, centroids: &Matrix) -> Matrix {
        let k = centroids.rows();
        let mut sums = vec![vec![0.0f64; x.cols()]; k];
        let mut counts = vec![0usize; k];
        for row in x.iter_rows() {
            let c = nearest_centroid(row, centroids).0;
            counts[c] += 1;
            for (s, &v) in sums[c].iter_mut().zip(row) {
                *s += v;
            }
        }
        let mut next = centroids.clone();
        for c in 0..k {
            if counts[c] == 0 {
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            for (ctr, &s) in next.row_mut(c).iter_mut().zip(&sums[c]) {
                *ctr = s * inv;
            }
        }
        next
    }

    #[test]
    fn deterministic_given_seed() {
        let x = blobs();
        let cfg = MiniBatchConfig::new(3).with_seed(42).with_batch_size(7);
        let mut a = MiniBatchKMeans::init(&x, cfg).unwrap();
        let mut b = MiniBatchKMeans::init(&x, cfg).unwrap();
        for _ in 0..5 {
            a.step(&x).unwrap();
            b.step(&x).unwrap();
        }
        assert_eq!(a.centroids(), b.centroids());
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn epochs_advance_the_batch_order() {
        // Two epochs from the same state must not replay the same
        // permutation: the second epoch keeps moving centroids even
        // after the first converged on this tiny window.
        let x = blobs();
        let cfg = MiniBatchConfig::new(3).with_seed(9).with_batch_size(4);
        let mut m = MiniBatchKMeans::init(&x, cfg).unwrap();
        m.step(&x).unwrap();
        assert_eq!(m.epochs(), 1);
        m.step(&x).unwrap();
        assert_eq!(m.epochs(), 2);
        let total: u64 = m.counts().iter().sum();
        assert_eq!(total, 2 * x.rows() as u64);
    }

    #[test]
    fn pool_step_matches_serial_bit_for_bit() {
        let x = blobs();
        for batch_size in [5, 17, 60] {
            let cfg = MiniBatchConfig::new(3)
                .with_seed(42)
                .with_batch_size(batch_size);
            let mut serial = MiniBatchKMeans::init(&x, cfg).unwrap();
            for _ in 0..3 {
                serial.step(&x).unwrap();
            }
            for threads in [2, 8] {
                let pool = ThreadPool::new(threads);
                let mut par = MiniBatchKMeans::init(&x, cfg).unwrap();
                for _ in 0..3 {
                    par.step_with_pool(&x, &pool).unwrap();
                }
                assert_eq!(
                    serial.centroids(),
                    par.centroids(),
                    "batch {batch_size}, {threads} threads"
                );
                assert_eq!(serial.counts(), par.counts());
            }
        }
    }

    #[test]
    fn warm_start_converges_toward_blob_centers() {
        let x = blobs();
        let cfg = MiniBatchConfig::new(3).with_seed(3).with_batch_size(16);
        let full = KMeans::fit(&x, super::super::KMeansConfig::new(3).with_seed(3)).unwrap();
        let mut m = MiniBatchKMeans::warm_start(full.centroids().clone(), cfg).unwrap();
        for _ in 0..4 {
            m.step(&x).unwrap();
        }
        // Warm-started from the converged solution, every centroid stays
        // inside its blob (spread is 0.4; blobs are 10+ apart).
        for (a, b) in m.centroids().iter_rows().zip(full.centroids().iter_rows()) {
            assert!(Matrix::sq_dist(a, b) < 1.0);
        }
    }

    #[test]
    fn into_kmeans_scores_wcss_on_the_window() {
        let x = blobs();
        let cfg = MiniBatchConfig::new(3)
            .with_seed(7)
            .with_batch_size(x.rows());
        let mut m = MiniBatchKMeans::init(&x, cfg).unwrap();
        for _ in 0..8 {
            m.step(&x).unwrap();
        }
        let frozen = m.clone().into_kmeans(&x, &ThreadPool::serial()).unwrap();
        let pred = frozen.predict(&x).unwrap();
        let recomputed: f64 = x
            .iter_rows()
            .enumerate()
            .map(|(i, row)| Matrix::sq_dist(row, frozen.centroids().row(pred[i])))
            .sum();
        assert!((recomputed - frozen.wcss()).abs() < 1e-9);
        assert_eq!(frozen.iterations(), 8);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let x = blobs();
        assert!(MiniBatchKMeans::init(&x, MiniBatchConfig::new(0)).is_err());
        assert!(MiniBatchKMeans::init(&x, MiniBatchConfig::new(x.rows() + 1)).is_err());
        assert!(MiniBatchKMeans::init(&x, MiniBatchConfig::new(3).with_batch_size(0)).is_err());
        let centroids = Matrix::zeros(2, 2).unwrap();
        assert!(MiniBatchKMeans::warm_start(centroids, MiniBatchConfig::new(3)).is_err());
        let mut m = MiniBatchKMeans::init(&x, MiniBatchConfig::new(3)).unwrap();
        let narrow = Matrix::zeros(4, 3).unwrap();
        assert!(m.step(&narrow).is_err());
    }

    proptest! {
        /// With `batch_size == n` and zero counts, one epoch is exactly
        /// one Lloyd iteration: the running-mean update over a full
        /// permutation equals each cluster's member mean (empty clusters
        /// keep their centroid — Lloyd's reseed heuristic is a full-fit
        /// concern, so the reference omits it too).
        #[test]
        fn prop_full_batch_epoch_is_one_lloyd_iteration(
            seed in any::<u64>(), k in 1usize..6
        ) {
            let x = blobs();
            let cfg = MiniBatchConfig::new(k).with_seed(seed).with_batch_size(x.rows());
            let mut m = MiniBatchKMeans::init(&x, cfg).unwrap();
            let expected = one_lloyd_update(&x, m.centroids());
            m.step(&x).unwrap();
            for (got, want) in m.centroids().iter_rows().zip(expected.iter_rows()) {
                for (g, w) in got.iter().zip(want) {
                    prop_assert!((g - w).abs() < 1e-9, "centroid drifted: {g} vs {w}");
                }
            }
        }
    }
}
