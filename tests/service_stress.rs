//! Concurrency stress: pipelined clients hammering the risk server while
//! the detector is hot-swapped underneath them.
//!
//! Eight client threads each stream a pipelined burst of frames (write
//! everything, then read everything — exercising the server's
//! batch-per-guard drain) while the main thread swaps the serving
//! detector fifty times. No verdict may be lost, duplicated or
//! reordered, and the shared counters must reconcile exactly with what
//! the clients saw.
//!
//! A second, fully deterministic scenario drives the server with an
//! injected `TestClock` and a strictly sequential client, and pins the
//! complete metrics exposition against the committed golden file
//! `results/obs_exposition.txt` — byte for byte. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test service_stress`.
//!
//! A third scenario is a seeded connection-churn storm: hundreds of
//! short-lived connections opening and closing under a standing pool of
//! long-lived pipelined ones, run against both connection cores. Every
//! slot must be reaped while the server keeps serving, the
//! `server.connections.open` gauge must return to zero, and the reactor
//! must sustain at least 4x the threaded run's concurrent-connection
//! count with the same exact counter identities.

use browser_polygraph::core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use browser_polygraph::engine::{UserAgent, Vendor};
use browser_polygraph::fingerprint::{
    encode_stats_request, encode_submission, FeatureSet, Submission,
};
use browser_polygraph::obs::{Snapshot, TestClock};
use browser_polygraph::service::proto::{
    decode_stats_response_header, STATS_RESPONSE_HEADER_LEN, VERDICT_LEN,
};
use browser_polygraph::service::server::metric_names;
use browser_polygraph::service::{
    start_risk_server, start_risk_server_with, RiskServerConfig, ServerBackend, Verdict,
    VerdictStatus, MAX_BATCH_PER_GUARD,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const FRAMES_PER_CLIENT: usize = 200;
const SWAPS: usize = 50;

/// A detector over three well-separated eras; `seed` varies the k-means
/// restarts without changing the learned geometry, so swapped-in models
/// agree on every probe the clients send.
fn era_detector(seed: u64) -> Detector {
    let mut set = TrainingSet::new(2);
    for (base, ua) in [
        (0.0, UserAgent::new(Vendor::Chrome, 60)),
        (10.0, UserAgent::new(Vendor::Chrome, 100)),
        (20.0, UserAgent::new(Vendor::Firefox, 100)),
    ] {
        for j in 0..40 {
            set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                .expect("push");
        }
    }
    let fs = FeatureSet::table8().subset(&[0, 1]);
    let config = TrainConfig {
        k: 3,
        n_components: 2,
        min_samples_for_majority: 1,
        seed,
        ..Default::default()
    };
    Detector::new(TrainedModel::fit(fs, &set, config).expect("fit"))
}

fn frame_for(values: Vec<u32>, ua: UserAgent, session: u8) -> Vec<u8> {
    let sub = Submission {
        session_id: [session; 16],
        user_agent: ua.to_ua_string(),
        values,
    };
    encode_submission(&sub).expect("encode").to_vec()
}

#[test]
fn pipelined_clients_survive_fifty_hot_swaps() {
    let server = start_risk_server("127.0.0.1:0", era_detector(1)).expect("bind");
    let addr = server.local_addr();

    let honest = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100), 1);
    let lying = frame_for(vec![20, 20], UserAgent::new(Vendor::Chrome, 100), 2);

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let honest = honest.clone();
            let lying = lying.clone();
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("timeout");

                // Pipeline the full burst before reading a single verdict,
                // so the server sees a deep backlog to drain in batches.
                let mut wire = Vec::new();
                for i in 0..FRAMES_PER_CLIENT {
                    let frame = if (c + i) % 2 == 0 { &honest } else { &lying };
                    wire.extend_from_slice(&(frame.len() as u16).to_le_bytes());
                    wire.extend_from_slice(frame);
                }
                stream.write_all(&wire).expect("write burst");

                let mut assessed = 0usize;
                let mut flagged = 0usize;
                for i in 0..FRAMES_PER_CLIENT {
                    let mut buf = [0u8; VERDICT_LEN];
                    stream.read_exact(&mut buf).expect("read verdict");
                    let v = Verdict::decode(&buf).expect("decode");
                    assert_eq!(v.status, VerdictStatus::Assessed, "client {c} frame {i}");
                    // Verdicts must come back in frame order regardless of
                    // how the server batched them: the honest/lying
                    // alternation is position-determined.
                    assert_eq!(
                        v.flagged,
                        (c + i) % 2 == 1,
                        "client {c} frame {i}: verdict out of order"
                    );
                    assessed += 1;
                    if v.flagged {
                        flagged += 1;
                    }
                }
                (assessed, flagged)
            })
        })
        .collect();

    // Hot-swap the serving detector while the bursts are in flight. The
    // swapped-in models are trained on the same eras (different k-means
    // seed), so every in-flight probe keeps its expected verdict.
    for s in 0..SWAPS {
        server.swap_detector(era_detector(2 + s as u64));
        thread::sleep(Duration::from_millis(1));
    }

    let mut total_assessed = 0usize;
    let mut total_flagged = 0usize;
    for c in clients {
        let (assessed, flagged) = c.join().expect("client thread");
        assert_eq!(assessed, FRAMES_PER_CLIENT);
        total_assessed += assessed;
        total_flagged += flagged;
    }

    // Let the last connection workers fold their counters.
    thread::sleep(Duration::from_millis(50));
    let stats = server.stats();
    assert_eq!(
        stats.assessed as usize, total_assessed,
        "every client-observed verdict must be counted exactly once"
    );
    assert_eq!(total_assessed, CLIENTS * FRAMES_PER_CLIENT);
    assert_eq!(stats.flagged as usize, total_flagged);
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.swaps as usize, SWAPS);

    let batches = stats.batches as usize;
    assert!(
        batches >= total_assessed / MAX_BATCH_PER_GUARD,
        "batches must cover all frames: {batches}"
    );
    assert!(
        batches <= total_assessed,
        "a batch holds at least one frame: {batches}"
    );

    // The batch histograms reconcile exactly with the counters even under
    // full concurrency: every assessed frame sits in exactly one batch.
    let snap = server.snapshot();
    let batch_frames = snap
        .histograms
        .get(metric_names::BATCH_FRAMES)
        .expect("batch_frames histogram");
    assert_eq!(batch_frames.sum as usize, total_assessed);
    assert_eq!(batch_frames.count as usize, batches);
    assert_eq!(
        batch_frames.buckets.iter().sum::<u64>(),
        batch_frames.count,
        "bucket counts must sum to the observation count"
    );
    server.shutdown();
}

const CHURN_SEED: u64 = 0x00C0_FFEE_D00D_F00D;
const SHORT_WORKERS: usize = 4;
const SHORT_PER_WORKER: usize = 60;
const LONG_LIVED_BASE: usize = 12;
const LONG_ROUNDS: usize = 3;

/// Deterministic schedule byte for the churn storm.
fn churn_byte(seed: u64, i: u64) -> u8 {
    (seed.wrapping_add(i).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as u8
}

fn churn_round_trip(stream: &mut TcpStream, honest: &[u8], lying: &[u8], k: usize, tag: &str) {
    let frame = if k.is_multiple_of(2) { honest } else { lying };
    stream
        .write_all(&(frame.len() as u16).to_le_bytes())
        .expect("write len");
    stream.write_all(frame).expect("write frame");
    let mut buf = [0u8; VERDICT_LEN];
    stream.read_exact(&mut buf).expect("read verdict");
    let v = Verdict::decode(&buf).expect("decode");
    assert_eq!(v.status, VerdictStatus::Assessed, "{tag}");
    assert_eq!(v.flagged, k % 2 == 1, "{tag}: verdict out of order");
}

/// Runs the seeded open/close storm against one backend: `long_lived`
/// standing connections kept busy while `SHORT_WORKERS` threads churn
/// through short-lived ones. Returns the concurrent-connection count the
/// server sustained (read from the `server.connections.open` gauge while
/// the full standing pool was live), after asserting that every slot was
/// reaped, the gauge returned to zero, and the counters reconcile.
fn churn_storm(backend: ServerBackend, long_lived: usize) -> i64 {
    let config = RiskServerConfig {
        backend,
        read_timeout: Duration::from_secs(10),
        ..Default::default()
    };
    let server = start_risk_server_with("127.0.0.1:0", era_detector(1), config).expect("bind");
    let addr = server.local_addr();
    let honest = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100), 1);
    let lying = frame_for(vec![20, 20], UserAgent::new(Vendor::Chrome, 100), 2);

    // Stand up the long-lived pool, one confirmed round trip each.
    let mut long_conns = Vec::with_capacity(long_lived);
    for j in 0..long_lived {
        let mut stream = TcpStream::connect(addr).expect("connect long-lived");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        churn_round_trip(&mut stream, &honest, &lying, 0, &format!("long {j} warmup"));
        long_conns.push(stream);
    }
    let mut long_frames = long_lived;
    let concurrent = server.stats().connections_open;
    assert!(
        concurrent >= long_lived as i64,
        "the full standing pool must be visible in the gauge: {concurrent}"
    );

    // The short-lived storm: each worker opens, pipelines 1–3 frames,
    // reads its verdicts in order, and closes — all on a seeded schedule.
    let workers: Vec<_> = (0..SHORT_WORKERS)
        .map(|w| {
            let honest = honest.clone();
            let lying = lying.clone();
            thread::spawn(move || {
                let mut frames = 0usize;
                for i in 0..SHORT_PER_WORKER {
                    let conn_idx = (w * SHORT_PER_WORKER + i) as u64;
                    let mut stream = TcpStream::connect(addr).expect("connect short-lived");
                    stream.set_nodelay(true).expect("nodelay");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .expect("timeout");
                    let n = 1 + churn_byte(CHURN_SEED, conn_idx) as usize % 3;
                    let mut wire = Vec::new();
                    for k in 0..n {
                        let frame = if k % 2 == 0 { &honest } else { &lying };
                        wire.extend_from_slice(&(frame.len() as u16).to_le_bytes());
                        wire.extend_from_slice(frame);
                    }
                    stream.write_all(&wire).expect("write burst");
                    for k in 0..n {
                        let mut buf = [0u8; VERDICT_LEN];
                        stream.read_exact(&mut buf).expect("read verdict");
                        let v = Verdict::decode(&buf).expect("decode");
                        assert_eq!(v.status, VerdictStatus::Assessed, "short {conn_idx}");
                        assert_eq!(v.flagged, k % 2 == 1, "short {conn_idx} frame {k}");
                    }
                    frames += n;
                    // The storm's whole point: the stream drops here.
                }
                frames
            })
        })
        .collect();

    // Keep the standing pool busy while the storm rages — a reaped slot
    // must never take a live neighbour's identity with it.
    for round in 1..=LONG_ROUNDS {
        for (j, stream) in long_conns.iter_mut().enumerate() {
            churn_round_trip(
                stream,
                &honest,
                &lying,
                round,
                &format!("long {j} round {round}"),
            );
            long_frames += 1;
        }
    }

    let mut short_frames = 0usize;
    for w in workers {
        short_frames += w.join().expect("short-lived worker");
    }

    // Every long-lived connection survived the churn around it.
    for (j, stream) in long_conns.iter_mut().enumerate() {
        churn_round_trip(stream, &honest, &lying, 0, &format!("long {j} after storm"));
        long_frames += 1;
    }
    drop(long_conns);

    // With every client gone, the server must retire each slot cleanly
    // *while still serving*: all reaped, the open gauge back to zero.
    let opened = long_lived + SHORT_WORKERS * SHORT_PER_WORKER;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = server.stats();
        if stats.connections_closed as usize == opened
            && stats.connections_reaped as usize == opened
            && stats.connections_open == 0
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slots never fully retired: {stats:?}"
        );
        thread::sleep(Duration::from_millis(5));
    }

    // Counter identities under churn: nothing errored, nothing lost.
    let stats = server.stats();
    assert_eq!(stats.connections_opened as usize, opened);
    assert_eq!(stats.connections_errored, 0);
    assert_eq!(stats.malformed, 0);
    assert_eq!(
        stats.assessed as usize,
        long_frames + short_frames,
        "every client-observed verdict counted exactly once"
    );
    server.shutdown();
    concurrent
}

#[test]
fn connection_churn_storm_reaps_every_slot() {
    let threaded = churn_storm(ServerBackend::Threaded, LONG_LIVED_BASE);
    // The reactor run holds a 4x standing pool through the same storm.
    let reactor = churn_storm(ServerBackend::Reactor, LONG_LIVED_BASE * 4);
    assert!(
        reactor >= 4 * threaded,
        "the reactor must sustain at least 4x the threaded backend's \
         concurrent connections: reactor {reactor}, threaded {threaded}"
    );
}

const DET_FRAMES: usize = 50;

/// Runs the deterministic scenario once and returns the final text
/// exposition: injected `TestClock` stepping 7 µs per read, one strictly
/// sequential client (each batch is exactly one frame), one detector
/// swap, one `STATS` round trip.
fn deterministic_exposition() -> String {
    let clock = Arc::new(TestClock::with_step(7));
    let config = RiskServerConfig {
        read_timeout: Duration::from_secs(5),
        clock: clock.clone(),
        ..Default::default()
    };
    let server = start_risk_server_with("127.0.0.1:0", era_detector(1), config).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");

    let honest = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100), 1);
    let lying = frame_for(vec![20, 20], UserAgent::new(Vendor::Chrome, 100), 2);

    for i in 0..DET_FRAMES {
        if i == DET_FRAMES / 2 {
            // One deterministic mid-run swap, between round trips so no
            // request is in flight.
            server.swap_detector(era_detector(99));
        }
        let frame = if i % 2 == 0 { &honest } else { &lying };
        stream
            .write_all(&(frame.len() as u16).to_le_bytes())
            .expect("write len");
        stream.write_all(frame).expect("write frame");
        let mut buf = [0u8; VERDICT_LEN];
        stream.read_exact(&mut buf).expect("read verdict");
        let v = Verdict::decode(&buf).expect("decode");
        assert_eq!(v.status, VerdictStatus::Assessed);
        assert_eq!(v.flagged, i % 2 == 1);
    }

    // One STATS round trip over the same socket; the response is parsed
    // and must already show every assessment.
    let req = encode_stats_request();
    stream
        .write_all(&(req.len() as u16).to_le_bytes())
        .expect("write stats len");
    stream.write_all(&req).expect("write stats");
    let mut header = [0u8; STATS_RESPONSE_HEADER_LEN];
    stream.read_exact(&mut header).expect("stats header");
    let len = decode_stats_response_header(&header).expect("stats header decode");
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("stats body");
    let wire_snap =
        Snapshot::parse_json(&String::from_utf8(body).expect("utf8")).expect("parse snapshot");
    assert_eq!(
        wire_snap.counters.get(metric_names::ASSESSED),
        Some(&(DET_FRAMES as u64))
    );
    drop(stream);

    // Quiesce: wait until the connection worker has fully retired so the
    // snapshot's cross-metric identities are exact.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = server.stats();
        if stats.connections_closed == 1 && stats.connections_reaped == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "worker never retired: {stats:?}");
        thread::sleep(Duration::from_millis(5));
    }

    let snap = server.snapshot();
    let stats = server.stats();
    let batch_frames = snap
        .histograms
        .get(metric_names::BATCH_FRAMES)
        .expect("batch_frames");
    assert_eq!(
        batch_frames.sum, stats.assessed,
        "histogram frame counts must sum exactly to `assessed`"
    );
    let batch_micros = snap
        .histograms
        .get(metric_names::BATCH_MICROS)
        .expect("batch_micros");
    // Every batch span covers exactly one 7 µs clock step.
    assert_eq!(batch_micros.sum, 7 * batch_micros.count);
    server.shutdown();
    snap.render_text()
}

#[test]
fn deterministic_exposition_matches_golden() {
    let first = deterministic_exposition();
    let second = deterministic_exposition();
    assert_eq!(
        first, second,
        "two runs under the injected clock must render byte-identical expositions"
    );

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/obs_exposition.txt");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(golden_path, &first).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("missing results/obs_exposition.txt — run with UPDATE_GOLDEN=1 to create");
    assert_eq!(
        first, golden,
        "exposition drifted from results/obs_exposition.txt; \
         if the change is intended, regenerate with UPDATE_GOLDEN=1"
    );
}
