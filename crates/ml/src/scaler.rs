//! Per-column standardisation (zero mean, unit variance).
//!
//! The paper scales the *deviation-based* attributes before PCA because raw
//! property counts span very different ranges (§6.4.1). Time-based
//! attributes are already binary; scaling them is harmless (they become two
//! centred values), so the scaler is applied uniformly unless the caller
//! restricts it to a column subset.

use crate::error::MlError;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Fitted per-column standardiser: `x -> (x - mean) / std`.
///
/// Columns with zero variance are passed through centred only (divided by 1
/// instead of 0), matching scikit-learn's behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    scales: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler on the columns of `x`.
    ///
    /// Rejects non-finite training cells: a single NaN or infinity would
    /// otherwise produce a non-finite column mean/std and silently poison
    /// every value that column ever scales. The zero-variance guard also
    /// requires a *finite* positive std — a NaN std must fall into the
    /// pass-through (divide by 1) branch, never be divided by.
    pub fn fit(x: &Matrix) -> Result<Self, MlError> {
        for (r, row) in x.iter_rows().enumerate() {
            for (c, v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(MlError::NonFiniteInput { row: r, col: c });
                }
            }
        }
        let means = x.col_means();
        let scales = x
            .col_stds()
            .into_iter()
            .map(|s| if s.is_finite() && s > 0.0 { s } else { 1.0 })
            .collect();
        Ok(Self { means, scales })
    }

    /// Fits on `x` and transforms it in one step.
    pub fn fit_transform(x: &Matrix) -> Result<(Self, Matrix), MlError> {
        let s = Self::fit(x)?;
        let t = s
            .transform(x)
            .expect("fit/transform dimensions match by construction");
        Ok((s, t))
    }

    /// Number of columns the scaler was fitted on.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Per-column means captured at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column scales captured at fit time (1.0 for constant columns).
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }

    /// Applies the fitted transform to a new matrix.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix, MlError> {
        if x.cols() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                got: x.cols(),
                expected: self.means.len(),
                what: "columns",
            });
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.scales) {
                *v = (*v - m) / s;
            }
        }
        Ok(out)
    }

    /// Applies the fitted transform to a single sample.
    pub fn transform_row(&self, row: &[f64]) -> Result<Vec<f64>, MlError> {
        if row.len() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                got: row.len(),
                expected: self.means.len(),
                what: "row length",
            });
        }
        Ok(row
            .iter()
            .zip(&self.means)
            .zip(&self.scales)
            .map(|((&v, &m), &s)| (v - m) / s)
            .collect())
    }

    /// Neutralises the transform on the listed columns: they pass through
    /// unscaled and uncentred. The paper scales only its deviation-based
    /// attributes — "the time-based attributes were already in the binary
    /// format which was suitable" (§6.4.1) — and this is how that
    /// selective scaling is expressed.
    ///
    /// Out-of-range indices are ignored.
    pub fn neutralize_columns(&mut self, cols: &[usize]) {
        for &c in cols {
            if c < self.means.len() {
                self.means[c] = 0.0;
                self.scales[c] = 1.0;
            }
        }
    }

    /// Inverts the transform (useful for inspecting centroids in the
    /// original feature space).
    pub fn inverse_transform_row(&self, row: &[f64]) -> Result<Vec<f64>, MlError> {
        if row.len() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                got: row.len(),
                expected: self.means.len(),
                what: "row length",
            });
        }
        Ok(row
            .iter()
            .zip(&self.means)
            .zip(&self.scales)
            .map(|((&v, &m), &s)| v * s + m)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scaled_columns_have_zero_mean_unit_variance() {
        let x = Matrix::from_rows(&[
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
            vec![4.0, 400.0],
        ])
        .unwrap();
        let (_, t) = StandardScaler::fit_transform(&x).unwrap();
        let means = t.col_means();
        let stds = t.col_stds();
        for m in means {
            assert!(m.abs() < 1e-12);
        }
        for s in stds {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_is_centred_not_divided() {
        let x = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0]]).unwrap();
        let (s, t) = StandardScaler::fit_transform(&x).unwrap();
        assert_eq!(s.scales(), &[1.0]);
        for r in t.iter_rows() {
            assert_eq!(r[0], 0.0);
        }
    }

    #[test]
    fn transform_rejects_wrong_width() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let s = StandardScaler::fit(&x).unwrap();
        let y = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(s.transform(&y).is_err());
        assert!(s.transform_row(&[1.0]).is_err());
        assert!(s.inverse_transform_row(&[1.0]).is_err());
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]).unwrap();
        let s = StandardScaler::fit(&x).unwrap();
        let t = s.transform(&x).unwrap();
        for (i, row) in x.iter_rows().enumerate() {
            assert_eq!(s.transform_row(row).unwrap(), t.row(i));
        }
    }

    #[test]
    fn non_finite_training_input_is_rejected_with_position() {
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, poison]]).unwrap();
            assert_eq!(
                StandardScaler::fit(&x),
                Err(MlError::NonFiniteInput { row: 1, col: 1 })
            );
            assert!(StandardScaler::fit_transform(&x).is_err());
        }
    }

    #[test]
    fn overflowing_column_std_falls_back_to_pass_through() {
        // Finite cells whose variance overflows to +inf: the old
        // `s > 0.0` guard happily divided by the infinite std and zeroed
        // the column. The finite-guard must treat it like a constant
        // column instead (scale 1.0), keeping every scaled value finite.
        let x = Matrix::from_rows(&[vec![1e200], vec![-1e200], vec![1e200]]).unwrap();
        let s = StandardScaler::fit(&x).unwrap();
        assert_eq!(s.scales(), &[1.0]);
        let t = s.transform(&x).unwrap();
        for r in t.iter_rows() {
            assert!(r[0].is_finite(), "scaled value must stay finite");
        }
    }

    proptest! {
        #[test]
        fn prop_inverse_round_trips(
            vals in proptest::collection::vec(-1e4f64..1e4, 4..40)
        ) {
            let cols = 2;
            let rows = vals.len() / cols;
            let x = Matrix::from_vec(rows, cols, vals[..rows * cols].to_vec()).unwrap();
            let s = StandardScaler::fit(&x).unwrap();
            for row in x.iter_rows() {
                let fwd = s.transform_row(row).unwrap();
                let back = s.inverse_transform_row(&fwd).unwrap();
                for (a, b) in back.iter().zip(row) {
                    prop_assert!((a - b).abs() < 1e-6);
                }
            }
        }

        #[test]
        fn prop_inverse_round_trips_with_neutralized_columns(
            vals in proptest::collection::vec(-1e4f64..1e4, 6..60),
            neutral in 0usize..3
        ) {
            // Neutralised columns become the identity transform, so the
            // round trip must stay exact-ish on them too.
            let cols = 3;
            let rows = vals.len() / cols;
            let x = Matrix::from_vec(rows, cols, vals[..rows * cols].to_vec()).unwrap();
            let mut s = StandardScaler::fit(&x).unwrap();
            s.neutralize_columns(&[neutral, 99]); // out-of-range is ignored
            prop_assert_eq!(s.means()[neutral], 0.0);
            prop_assert_eq!(s.scales()[neutral], 1.0);
            for row in x.iter_rows() {
                let fwd = s.transform_row(row).unwrap();
                // The neutralised column passes through untouched.
                prop_assert_eq!(fwd[neutral].to_bits(), row[neutral].to_bits());
                let back = s.inverse_transform_row(&fwd).unwrap();
                for (a, b) in back.iter().zip(row) {
                    prop_assert!((a - b).abs() < 1e-6);
                }
            }
        }

        #[test]
        fn prop_transform_then_inverse_on_unseen_rows(
            vals in proptest::collection::vec(-1e3f64..1e3, 8..40),
            probe in proptest::collection::vec(-1e6f64..1e6, 2..3)
        ) {
            // The inverse must hold for rows the scaler never saw at fit
            // time, including values far outside the training range.
            let cols = 2;
            let rows = vals.len() / cols;
            let x = Matrix::from_vec(rows, cols, vals[..rows * cols].to_vec()).unwrap();
            let s = StandardScaler::fit(&x).unwrap();
            let mut probe = probe;
            probe.resize(cols, 0.0);
            let fwd = s.transform_row(&probe).unwrap();
            let back = s.inverse_transform_row(&fwd).unwrap();
            for (a, b) in back.iter().zip(&probe) {
                prop_assert!((a - b).abs() < 1e-6 * b.abs().max(1.0));
            }
        }
    }
}
