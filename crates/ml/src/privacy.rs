//! Privacy metrics: Shannon entropy, normalised entropy and anonymity sets.
//!
//! The paper's §7.4 argues the coarse-grained fingerprints cannot track
//! users: only 0.3% of the 205k collected fingerprints were unique and
//! 95.6% sat in anonymity sets larger than 50 (Figure 5), and no collected
//! feature carries more normalised entropy than the user-agent string
//! itself (Table 7). These functions regenerate both analyses.

use std::collections::BTreeMap;

/// Shannon entropy (base 2) of a discrete sample.
///
/// Counting happens in a `BTreeMap` so the probability terms are summed
/// in sorted value order: floating-point addition is not associative, and
/// hash-order summation made the low bits of the entropy depend on the
/// process's hash seed.
///
/// Returns 0 for an empty slice.
pub fn shannon_entropy<T: Ord>(values: &[T]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut counts: BTreeMap<&T, usize> = BTreeMap::new();
    for v in values {
        *counts.entry(v).or_default() += 1;
    }
    let n = values.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Entropy normalised by `log2(n)` — the convention of the AmIUnique study
/// the paper compares against, where `n` is the number of samples. A value
/// of 1 means every sample is distinct.
pub fn normalized_entropy<T: Ord>(values: &[T]) -> f64 {
    let n = values.len();
    if n <= 1 {
        return 0.0;
    }
    shannon_entropy(values) / (n as f64).log2()
}

/// One bucket of the anonymity-set histogram of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymityBucket {
    /// Human-readable set-size range, e.g. `"2-10"`.
    pub label: &'static str,
    /// Inclusive lower bound on anonymity-set size.
    pub min_size: usize,
    /// Inclusive upper bound (usize::MAX for the open bucket).
    pub max_size: usize,
    /// Fraction of *fingerprints* (samples, not distinct values) whose
    /// anonymity set falls in this bucket.
    pub fraction: f64,
}

/// Summary of an anonymity-set analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymityReport {
    /// Fraction of samples that are unique (set size 1) — the paper's 0.3%.
    pub unique_fraction: f64,
    /// Fraction of samples in sets larger than 50 — the paper's 95.6%.
    pub large_set_fraction: f64,
    /// Full histogram over the paper's buckets.
    pub buckets: Vec<AnonymityBucket>,
    /// Number of distinct fingerprint values observed.
    pub distinct_values: usize,
    /// Total samples.
    pub total: usize,
}

/// Computes the anonymity-set distribution of a fingerprint sample.
///
/// ```
/// use polygraph_ml::privacy::anonymity_sets;
///
/// // 99 users share one fingerprint; one user is unique.
/// let mut fingerprints = vec![[330u32, 270]; 99];
/// fingerprints.push([1, 1]);
/// let report = anonymity_sets(&fingerprints);
/// assert_eq!(report.unique_fraction, 0.01);
/// assert_eq!(report.large_set_fraction, 0.99);
/// ```
///
/// The anonymity set of a sample is the number of samples (including
/// itself) sharing its exact fingerprint value. Bucket boundaries follow
/// Figure 5: 1, 2–10, 11–50, 51–500, 501–5000, >5000.
pub fn anonymity_sets<T: Ord>(values: &[T]) -> AnonymityReport {
    let mut counts: BTreeMap<&T, usize> = BTreeMap::new();
    for v in values {
        *counts.entry(v).or_default() += 1;
    }
    let total = values.len();
    let buckets_def: [(&'static str, usize, usize); 6] = [
        ("1", 1, 1),
        ("2-10", 2, 10),
        ("11-50", 11, 50),
        ("51-500", 51, 500),
        ("501-5000", 501, 5000),
        (">5000", 5001, usize::MAX),
    ];
    let mut bucket_counts = [0usize; 6];
    for &c in counts.values() {
        for (i, &(_, lo, hi)) in buckets_def.iter().enumerate() {
            if c >= lo && c <= hi {
                // Weight by samples, not by distinct values: each of the
                // `c` users in this set contributes.
                bucket_counts[i] += c;
                break;
            }
        }
    }
    let denom = total.max(1) as f64;
    let buckets = buckets_def
        .iter()
        .zip(bucket_counts)
        .map(|(&(label, min_size, max_size), c)| AnonymityBucket {
            label,
            min_size,
            max_size,
            fraction: c as f64 / denom,
        })
        .collect();

    let unique: usize = counts.values().filter(|&&c| c == 1).count();
    let in_large: usize = counts.values().filter(|&&c| c > 50).copied().sum();
    AnonymityReport {
        unique_fraction: unique as f64 / denom,
        large_set_fraction: in_large as f64 / denom,
        buckets,
        distinct_values: counts.len(),
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn entropy_of_constant_is_zero() {
        assert_eq!(shannon_entropy(&[1, 1, 1, 1]), 0.0);
        assert_eq!(normalized_entropy(&[1, 1, 1, 1]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_two_values_is_one_bit() {
        let vals = [0, 1, 0, 1];
        assert!((shannon_entropy(&vals) - 1.0).abs() < 1e-12);
        assert!((normalized_entropy(&vals) - 0.5).abs() < 1e-12); // 1 / log2(4)
    }

    #[test]
    fn all_distinct_has_normalized_entropy_one() {
        let vals: Vec<u32> = (0..64).collect();
        assert!((normalized_entropy(&vals) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let empty: [u8; 0] = [];
        assert_eq!(shannon_entropy(&empty), 0.0);
        assert_eq!(normalized_entropy(&empty), 0.0);
        assert_eq!(normalized_entropy(&[42]), 0.0);
    }

    #[test]
    fn anonymity_report_counts_unique_and_large() {
        // 1 unique value + 60 copies of another.
        let mut vals = vec![999usize];
        vals.extend(std::iter::repeat_n(7, 60));
        let rep = anonymity_sets(&vals);
        assert!((rep.unique_fraction - 1.0 / 61.0).abs() < 1e-12);
        assert!((rep.large_set_fraction - 60.0 / 61.0).abs() < 1e-12);
        assert_eq!(rep.distinct_values, 2);
        assert_eq!(rep.total, 61);
    }

    #[test]
    fn buckets_partition_all_samples() {
        let vals: Vec<usize> = (0..100).map(|i| i % 7).collect();
        let rep = anonymity_sets(&vals);
        let sum: f64 = rep.buckets.iter().map(|b| b.fraction).sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "bucket fractions must sum to 1, got {sum}"
        );
    }

    #[test]
    fn bucket_boundaries_inclusive() {
        // Exactly 10 copies should land in "2-10", 11 copies in "11-50".
        let mut vals: Vec<&str> = Vec::new();
        vals.extend(std::iter::repeat_n("ten", 10));
        vals.extend(std::iter::repeat_n("eleven", 11));
        let rep = anonymity_sets(&vals);
        let b2_10 = rep.buckets.iter().find(|b| b.label == "2-10").unwrap();
        let b11_50 = rep.buckets.iter().find(|b| b.label == "11-50").unwrap();
        assert!((b2_10.fraction - 10.0 / 21.0).abs() < 1e-12);
        assert!((b11_50.fraction - 11.0 / 21.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_entropy_nonnegative_and_bounded(vals in proptest::collection::vec(0u8..16, 1..200)) {
            let h = shannon_entropy(&vals);
            prop_assert!(h >= 0.0);
            prop_assert!(h <= (vals.len() as f64).log2() + 1e-9);
            let hn = normalized_entropy(&vals);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&hn));
        }

        #[test]
        fn prop_bucket_fractions_sum_to_one(vals in proptest::collection::vec(0u16..64, 1..500)) {
            let rep = anonymity_sets(&vals);
            let sum: f64 = rep.buckets.iter().map(|b| b.fraction).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(rep.unique_fraction <= 1.0);
            prop_assert!(rep.large_set_fraction <= 1.0);
        }
    }
}
