//! Offline vendored proptest.
//!
//! A deterministic property-testing harness exposing the subset of the
//! proptest API this workspace uses: the `proptest!` macro with
//! `arg in strategy` bindings, integer/float range strategies, `any::<T>()`,
//! `proptest::collection::vec`, `proptest::option::of`, string strategies
//! from a small regex subset (character classes with `{n,m}` repetition),
//! and panic-based `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest: cases are derived from a fixed
//! per-test seed (fully reproducible runs, no persisted failure corpus)
//! and failing inputs are reported without shrinking. Case count defaults
//! to 64 and can be raised via `PROPTEST_CASES`.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs (`PROPTEST_CASES` overrides).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// The harness RNG: SplitMix64, seeded from the test name and case index
/// so every run of every test is reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case of one named property.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift with rejection (Lemire).
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let unit = rng.unit_f64() as $t;
                self.start() + unit * (self.end() - self.start())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// Types `any::<T>()` can generate.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broad-magnitude values.
        let mag = rng.unit_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { 1.0 } else { -1.0 };
        sign * (mag / 10.0).exp2()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// An unconstrained generator for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` strategy: `size` elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// An `Option` strategy (~75% `Some`).
    #[derive(Debug, Clone)]
    pub struct OfStrategy<S>(S);

    /// `None` or `Some(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy(inner)
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

// ------------------------------------------------------- regex strategy

/// One parsed atom of the supported regex subset.
#[derive(Debug, Clone)]
enum RegexAtom {
    /// Candidate characters (expanded from a class or a literal).
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct RegexPiece {
    atom: RegexAtom,
    min: usize,
    max: usize,
}

/// Parses the supported subset: literals, `[a-z ...]` classes, and
/// `{n}` / `{n,m}` repetition. Panics on anything else — loudly, so an
/// unsupported pattern is caught the first time a test runs.
fn parse_regex_subset(pattern: &str) -> Vec<RegexPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in regex {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "inverted range in regex {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in regex {pattern:?}");
                i = close + 1;
                RegexAtom::Class(set)
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                i += 2;
                RegexAtom::Class(vec![c])
            }
            c if !"{}()|*+?.".contains(c) => {
                i += 1;
                RegexAtom::Class(vec![c])
            }
            c => panic!("unsupported regex construct {c:?} in {pattern:?}"),
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in regex {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let parts: Vec<&str> = body.split(',').collect();
            let parsed = match parts.as_slice() {
                [n] => {
                    let n = n.trim().parse().expect("bad {n}");
                    (n, n)
                }
                [n, m] => (
                    n.trim().parse().expect("bad {n,m}"),
                    m.trim().parse().expect("bad {n,m}"),
                ),
                _ => panic!("bad repetition in regex {pattern:?}"),
            };
            i = close + 1;
            parsed
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in regex {pattern:?}");
        pieces.push(RegexPiece { atom, min, max });
    }
    pieces
}

/// String literals act as regex strategies (subset documented on
/// [`parse_regex_subset`]), mirroring proptest's `&str` strategy.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let pieces = parse_regex_subset(self);
        let mut out = String::new();
        for piece in &pieces {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            let RegexAtom::Class(set) = &piece.atom;
            for _ in 0..n {
                out.push(set[rng.below(set.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Everything tests import: the macros, [`any`], and [`Strategy`].
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Runs each property over [`cases`](crate::cases) deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::cases();
            for __case in 0..__cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)+
                $body
            }
        }
    )+};
}

/// Assert a property; panics with the failing condition on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality; panics with both values on violation.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Assert inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::sample(&(46u32..130), &mut rng);
            assert!((46..130).contains(&v));
            let f = Strategy::sample(&(-100.0f64..100.0), &mut rng);
            assert!((-100.0..100.0).contains(&f));
            let i = Strategy::sample(&(0u8..=20), &mut rng);
            assert!(i <= 20);
        }
    }

    #[test]
    fn regex_subset_generates_printable_ascii() {
        let mut rng = crate::TestRng::for_case("regex", 3);
        for _ in 0..200 {
            let s = Strategy::sample(&"[ -~]{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("det", 7);
        let mut b = crate::TestRng::for_case("det", 7);
        let sa = Strategy::sample(&"[a-z]{8}", &mut a);
        let sb = Strategy::sample(&"[a-z]{8}", &mut b);
        assert_eq!(sa, sb);
    }

    proptest! {
        #[test]
        fn macro_compiles_and_runs(
            v in 0u32..100,
            flag in any::<bool>(),
            id in any::<[u8; 16]>(),
            xs in crate::collection::vec(0i64..10, 0..5),
            opt in crate::option::of(1usize..4),
        ) {
            prop_assert!(v < 100);
            let _ = flag;
            prop_assert_eq!(id.len(), 16);
            prop_assert!(xs.len() < 5);
            if let Some(o) = opt {
                prop_assert!((1..4).contains(&o));
            }
        }
    }
}
