//! The prototype-shape database: how many own properties each DOM
//! prototype exposes, per platform era.
//!
//! Two layers:
//!
//! * **Authored shapes** for the 22 prototypes behind the paper's final
//!   *deviation-based* features (Table 8). These are hand-calibrated step
//!   tables whose era-to-era jumps reproduce the cluster structure of
//!   Table 3 and the Firefox-119 drift event of Table 6 (`DESIGN.md` §5).
//!   Magnitudes are realistic ballparks (Element ≈ 250–340 properties,
//!   WebGL2RenderingContext ≈ 550+, TextMetrics ≈ a dozen) so that the
//!   paper's observation that "some features had large values which could
//!   skew the model" (§6.4.1) holds and StandardScaler has real work to do.
//!
//! * **Procedural shapes** for the remaining prototypes of the 200-probe
//!   candidate list (Appendix-3). Each gets deterministic, hash-derived
//!   parameters reproducing the population statistics the paper reports
//!   from its first real-world data batch (§6.3): roughly 30% are constant
//!   across all modern browsers (and get dropped in pre-processing), a
//!   slice are sensitive to user configuration, and the rest evolve with
//!   the platform but more slowly than the authored 22.

use crate::eras::Era;

/// The 200 deviation-based candidate prototypes of Appendix-3, in the
/// paper's order. Index 0–21 are the prototypes of the final Table 8
/// feature set; the paper lists them first as well.
pub const DEVIATION_PROTOTYPES: [&str; 200] = [
    // -- block 1 ---------------------------------------------------------
    "Element",
    "Document",
    "HTMLElement",
    "SVGElement",
    "Navigator",
    "RTCIceCandidate",
    "SVGFEBlendElement",
    "TextMetrics",
    "Range",
    "StaticRange",
    "RTCRtpReceiver",
    "RTCPeerConnection",
    "AuthenticatorAttestationResponse",
    "FontFace",
    "HTMLVideoElement",
    "ResizeObserverEntry",
    "ShadowRoot",
    "RTCRtpSender",
    "PointerEvent",
    "Blob",
    "ServiceWorkerRegistration",
    "MediaSession",
    "PaymentResponse",
    "HTMLSourceElement",
    "Clipboard",
    "IDBTransaction",
    "Performance",
    "ServiceWorkerContainer",
    "HTMLIFrameElement",
    "PaymentRequest",
    "RTCRtpTransceiver",
    "IntersectionObserver",
    "CanvasRenderingContext2D",
    "CSSStyleSheet",
    "BaseAudioContext",
    "AudioContext",
    "HTMLLinkElement",
    "RTCDataChannel",
    "WritableStream",
    "DataTransferItem",
    "DocumentFragment",
    "HTMLMediaElement",
    // -- block 2 ---------------------------------------------------------
    "StorageManager",
    "HTMLSlotElement",
    "Text",
    "WebGL2RenderingContext",
    "HTMLInputElement",
    "WebGLRenderingContext",
    "HTMLButtonElement",
    "HTMLTextAreaElement",
    "HTMLSelectElement",
    "MediaRecorder",
    "CountQueuingStrategy",
    "BytelengthQueuingStrategy",
    "PerformanceMark",
    "PerformanceMeasure",
    "HTMLImageElement",
    "SpeechSynthesisEvent",
    "HTMLFormElement",
    "IDBCursor",
    "HTMLTemplateElement",
    "CSSRule",
    "Location",
    "PaymentAddress",
    "IntersectionObserverEntry",
    "TextEncoder",
    "ImageData",
    "HTMLMetaElement",
    "Crypto",
    "GamepadButton",
    "DOMMatrixReadOnly",
    "MediaKeys",
    "MessageEvent",
    "IDBFactory",
    "MediaDevices",
    "OfflineAudioContext",
    "URL",
    "ScriptProcessorNode",
    "SVGAnimatedNumberList",
    "ServiceWorker",
    "SensorErrorEvent",
    "SVGAnimatedPreserveAspectRatio",
    "Sensor",
    "SVGAnimatedRect",
    "SVGAnimatedString",
    "Selection",
    "SecurityPolicyViolationEvent",
    "XPathExpression",
    "SVGAnimatedNumber",
    "SVGAnimatedTransformList",
    "Screen",
    "RTCTrackEvent",
    "SVGAnimateElement",
    "SVGAnimateMotionElement",
    "RTCStatsReport",
    "RTCSessionDescription",
    "SVGAnimateTransformElement",
    "ScreenOrientation",
    "SVGAnimatedlengthList",
    "XPathResult",
    "SVGAngle",
    "SVGAElement",
    "SubtleCrypto",
    "SVGAnimatedAngle",
    // -- block 3 ---------------------------------------------------------
    "StyleSheetList",
    "StyleSheet",
    "StylePropertyMapReadOnly",
    "StylePropertyMap",
    "XPathEvaluator",
    "SVGAnimatedBoolean",
    "SharedWorker",
    "StorageEvent",
    "Storage",
    "StereoPannerNode",
    "SVGAnimatedEnumeration",
    "SpeechSynthesisUtterance",
    "SVGAnimatedInteger",
    "SVGAnimatedLength",
    "SpeechSynthesisErrorEvent",
    "SourceBufferList",
    "SourceBuffer",
    "WebGLFramebuffer",
    "PresentationConnection",
    "Plugin",
    "PluginArray",
    "PopStateEvent",
    "Presentation",
    "PresentationAvailability",
    "PresentationConnectionAvailableEvent",
    "PresentationConnectionCloseEvent",
    "PresentationConnectionList",
    "PresentationReceiver",
    "PresentationRequest",
    "ProcessingInstruction",
    "PictureInPictureWindow",
    "PermissionStatus",
    "PromiseRejectionEvent",
    "PerformanceNavigationTiming",
    "PerformanceObserver",
    "PerformanceObserverEntryList",
    "PerformancePaintTiming",
    "Permissions",
    "PerformanceResourceTiming",
    "PerformanceServerTiming",
    "PerformanceTiming",
    "PeriodicWave",
    "ProgressEvent",
    "PublicKeyCredential",
    "RTCDTMFToneChangeEvent",
    "RTCCertificate",
    "RTCDataChannelEvent",
    "RTCDTMFSender",
    "RTCPeerConnectionIceEvent",
    "Response",
    "PushManager",
    "PushSubscription",
    "PushSubscriptionOptions",
    "RadioNodeList",
    "ReadableStream",
    "ResizeObserver",
    "RelativeOrientationSensor",
    "RemotePlayback",
    "ReportingObserver",
    "Request",
    "SVGAnimationElement",
    "XMLHttpRequestEventTarget",
    // -- block 4 ---------------------------------------------------------
    "SVGCircleElement",
    "TreeWalker",
    "WebGLTexture",
    "TextDecoderStream",
    "TextEncoderStream",
    "WebGLSync",
    "TextTrack",
    "TextTrackCue",
    "TextTrackCueList",
    "WebGLShaderPrecisionFormat",
    "TextTrackList",
    "TimeRanges",
    "Touch",
    "TouchEvent",
    "TouchList",
    "TrackEvent",
    "TransformStream",
    "WebGLTransformFeedback",
    "TextDecoder",
    "WebGLUniformLocation",
    "SVGTitleElement",
    "WebGLVertexArrayObject",
    "SVGSymbolElement",
    "SVGTextContentElement",
    "SVGTextElement",
    "SVGTextPathElement",
    "SVGTextPositioningElement",
    "SVGTransform",
    "TaskAttributionTiming",
    "SVGTransformList",
    "SVGTSpanElement",
    "SVGUnitTypes",
    "SVGUseElement",
    "SVGViewElement",
];

/// The 22 prototypes of the paper's final deviation-based feature set
/// (Table 8, rows 1–22), in table order.
pub const TABLE8_PROTOTYPES: [&str; 22] = [
    "Element",
    "Document",
    "HTMLElement",
    "SVGElement",
    "SVGFEBlendElement",
    "TextMetrics",
    "Range",
    "StaticRange",
    "AuthenticatorAttestationResponse",
    "HTMLVideoElement",
    "ResizeObserverEntry",
    "ShadowRoot",
    "PointerEvent",
    "IntersectionObserver",
    "CanvasRenderingContext2D",
    "CSSStyleSheet",
    "AudioContext",
    "HTMLLinkElement",
    "HTMLMediaElement",
    "WebGL2RenderingContext",
    "WebGLRenderingContext",
    "CSSRule",
];

/// Authored per-era property counts for the Table 8 prototypes.
///
/// Column order follows [`Era::ALL`]:
/// `[EdgeHtml, Gecko46, Blink59, Gecko51, Blink69, Gecko93, Blink90,
///   Gecko101, Blink102, Blink110, Blink114, Blink119, Gecko119]`.
///
/// A value of 0 means the prototype does not exist in that era (the
/// fingerprinting script records 0 for a missing interface, exactly as a
/// `typeof X === "undefined"` guard would).
///
/// Calibration invariants (tested below):
/// * cluster-2 adjacency: |Blink59 − Gecko51| small,
/// * cluster-6 adjacency: |EdgeHtml − Gecko46| small,
/// * Gecko119 sits near Blink90 (the drift event of Table 6),
/// * all other neighbouring-era gaps are comfortably larger than the
///   within-cluster configuration noise (≤ 4 counts on a few features).
#[rustfmt::skip]
const AUTHORED: [(&str, [u32; 13]); 22] = [
    //                                    EdgH G46  B59  G51  B69  G93  B90  G101 B102 B110 B114 B119 G119
    ("Element",                          [231, 233, 258, 256, 272, 284, 295, 306, 318, 330, 341, 343, 296]),
    ("Document",                         [198, 200, 221, 220, 230, 238, 247, 255, 262, 270, 276, 276, 249]),
    ("HTMLElement",                      [ 55,  57,  66,  67,  74,  80,  87,  93, 100, 106, 112, 113,  88]),
    ("SVGElement",                       [ 28,  30,  38,  37,  43,  49,  54,  59,  65,  70,  74,  74,  55]),
    ("SVGFEBlendElement",                [  8,   8,  10,  10,  10,  11,  12,  12,  12,  13,  13,  13,  12]),
    ("TextMetrics",                      [  2,   2,   4,   4,   8,  10,  12,  12,  12,  13,  13,  13,  12]),
    ("Range",                            [ 30,  31,  36,  36,  38,  40,  42,  43,  44,  45,  46,  46,  42]),
    ("StaticRange",                      [  0,   0,   5,   5,   5,   6,   6,   6,   6,   7,   7,   7,   6]),
    ("AuthenticatorAttestationResponse", [  0,   0,   4,   4,   6,   7,   8,   9,  10,  11,  12,  12,   8]),
    ("HTMLVideoElement",                 [ 12,  13,  18,  17,  20,  22,  24,  25,  27,  28,  30,  30,  24]),
    ("ResizeObserverEntry",              [  0,   0,   3,   3,   4,   5,   6,   6,   6,   7,   7,   7,   6]),
    ("ShadowRoot",                       [  0,   0,   8,   8,  10,  12,  14,  15,  16,  17,  18,  18,  14]),
    ("PointerEvent",                     [ 10,   9,  11,  11,  13,  14,  15,  16,  17,  18,  18,  19,  15]),
    ("IntersectionObserver",             [  0,   0,   7,   7,   8,   8,   9,   9,  10,  11,  12,  12,   9]),
    ("CanvasRenderingContext2D",         [ 60,  62,  70,  69,  73,  76,  79,  81,  84,  86,  88,  89,  79]),
    ("CSSStyleSheet",                    [  8,   9,  11,  11,  12,  13,  15,  15,  16,  16,  17,  17,  15]),
    ("AudioContext",                     [  9,  10,  12,  12,  13,  14,  15,  15,  16,  16,  17,  17,  15]),
    ("HTMLLinkElement",                  [ 14,  15,  18,  18,  20,  21,  23,  24,  25,  26,  27,  27,  23]),
    ("HTMLMediaElement",                 [ 40,  42,  48,  47,  51,  54,  57,  59,  61,  63,  65,  65,  57]),
    ("WebGL2RenderingContext",           [  0,   0, 550, 548, 556, 560, 564, 568, 572, 576, 580, 580, 565]),
    ("WebGLRenderingContext",            [388, 390, 398, 396, 400, 403, 406, 408, 410, 412, 414, 414, 406]),
    ("CSSRule",                          [ 12,  13,  15,  15,  16,  17,  17,  18,  19,  19,  20,  20,  17]),
];

/// Looks up the own-property count of `proto` in `era`.
///
/// Returns `None` when the prototype does not exist in that era (callers
/// record 0), `Some(count)` otherwise. Unknown prototype names — anything
/// outside the Appendix-3 candidate list — return `None` in every era,
/// mirroring `typeof UnknownThing === "undefined"`.
pub fn own_property_count(proto: &str, era: Era) -> Option<u32> {
    let idx = era.index();
    if let Some((_, values)) = AUTHORED.iter().find(|(name, _)| *name == proto) {
        let v = values[idx];
        if v == 0 {
            return None;
        }
        // Per-(prototype, cluster-group) shape quirk in -2..=2: real
        // engines do not grow every interface in lock-step, so each
        // Table-3 group carries its own small idiosyncrasies. Constant
        // within a group, this decorrelates the features (giving the PCA
        // spectrum of Figure 2 its width) without moving any group's
        // internal geometry.
        let zig = (fnv1a_pair(fnv1a(proto.as_bytes()), 0x216C + era.group() as u64) % 5) as i64 - 2;
        return Some((v as i64 + zig).max(1) as u32);
    }
    if !DEVIATION_PROTOTYPES.contains(&proto) {
        return None;
    }
    procedural_count(proto, era)
}

/// Stability class of a procedural prototype, derived from its name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeClass {
    /// Constant across every modern browser — the ~30% the paper drops in
    /// pre-processing (§6.3).
    Constant,
    /// Affected by user configuration (privacy flags, WebRTC/SW disables)
    /// — excluded by the paper after manual analysis (§6.3).
    ConfigSensitive,
    /// Evolves with the platform; clean but less discriminative than the
    /// authored Table 8 set.
    Evolving,
}

/// Prefixes of prototypes that common privacy configurations can alter:
/// Firefox `about:config` switches, WebRTC blockers, and similar (§6.3).
const CONFIG_SENSITIVE_PREFIXES: [&str; 8] = [
    "ServiceWorker",
    "RTC",
    "Push",
    "Presentation",
    "Sensor",
    "Payment",
    "Speech",
    "Plugin",
];

/// Classifies a prototype from the candidate list.
pub fn shape_class(proto: &str) -> ShapeClass {
    if AUTHORED.iter().any(|(name, _)| *name == proto) {
        return ShapeClass::Evolving;
    }
    if CONFIG_SENSITIVE_PREFIXES
        .iter()
        .any(|p| proto.starts_with(p))
    {
        return ShapeClass::ConfigSensitive;
    }
    // ~30% constants, chosen deterministically by name hash.
    if fnv1a(proto.as_bytes()) % 10 < 3 {
        ShapeClass::Constant
    } else {
        ShapeClass::Evolving
    }
}

fn procedural_count(proto: &str, era: Era) -> Option<u32> {
    let h = fnv1a(proto.as_bytes());
    // Availability: some interfaces only exist on richer platforms.
    let intro_richness = ((h >> 8) % 4) as f64 * 1.4; // 0 / 1.4 / 2.8 / 4.2
    if era.richness() < intro_richness {
        return None;
    }
    let base = 4 + (h % 30) as u32;
    match shape_class(proto) {
        ShapeClass::Constant => Some(base),
        ShapeClass::ConfigSensitive | ShapeClass::Evolving => {
            let slope = 0.3 + ((h >> 16) % 10) as f64 * 0.12; // 0.3 .. 1.38
            let quirk = (fnv1a_pair(h, era.index() as u64) % 3) as u32;
            Some(base + (slope * era.richness()).round() as u32 + quirk)
        }
    }
}

/// FNV-1a over bytes; the deterministic seed of all procedural shapes.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// FNV-1a chaining of two hashes.
pub(crate) fn fnv1a_pair(a: u64, b: u64) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&a.to_le_bytes());
    bytes[8..].copy_from_slice(&b.to_le_bytes());
    fnv1a(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn candidate_list_has_200_unique_names() {
        let mut names: Vec<&str> = DEVIATION_PROTOTYPES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            200,
            "duplicate prototype names in the candidate list"
        );
    }

    #[test]
    fn table8_prototypes_are_all_candidates_and_authored() {
        for p in TABLE8_PROTOTYPES {
            assert!(
                DEVIATION_PROTOTYPES.contains(&p),
                "{p} missing from candidate list"
            );
            assert!(
                AUTHORED.iter().any(|(n, _)| *n == p),
                "{p} missing authored table"
            );
        }
        assert_eq!(AUTHORED.len(), TABLE8_PROTOTYPES.len());
    }

    #[test]
    fn authored_lookup_matches_table_up_to_group_quirk() {
        // Values follow the authored table within the ±2 per-group quirk.
        let e110 = own_property_count("Element", Era::Blink110).unwrap();
        assert!(e110.abs_diff(330) <= 2, "got {e110}");
        let e101 = own_property_count("Element", Era::Gecko101).unwrap();
        assert!(e101.abs_diff(306) <= 2, "got {e101}");
        assert_eq!(own_property_count("StaticRange", Era::EdgeHtml), None);
        assert_eq!(
            own_property_count("WebGL2RenderingContext", Era::Gecko46),
            None
        );
    }

    #[test]
    fn group_quirk_is_constant_within_a_cluster_group() {
        // Eras sharing a Table-3 group must share the quirk, so the
        // cross-vendor merges stay tight. Compare the quirk offsets of
        // paired eras: (value - table) must match.
        for (name, v) in AUTHORED {
            for (a, b) in [(Era::EdgeHtml, Era::Gecko46), (Era::Blink59, Era::Gecko51)] {
                let (ta, tb) = (v[a.index()], v[b.index()]);
                if ta == 0 || tb == 0 {
                    continue;
                }
                let qa = own_property_count(name, a).unwrap() as i64 - ta as i64;
                let qb = own_property_count(name, b).unwrap() as i64 - tb as i64;
                assert_eq!(qa, qb, "{name}: quirk differs within group {a:?}/{b:?}");
            }
        }
    }

    #[test]
    fn unknown_prototype_is_absent_everywhere() {
        for era in Era::ALL {
            assert_eq!(own_property_count("TotallyMadeUp", era), None);
        }
    }

    #[test]
    fn cluster2_adjacency_blink59_gecko51() {
        // The within-cluster gap must stay small on every authored feature,
        // or cluster 2 (Chrome 59-68 + Firefox 51-92) could not form.
        for (name, v) in AUTHORED {
            let gap = v[Era::Blink59.index()].abs_diff(v[Era::Gecko51.index()]);
            assert!(gap <= 3, "{name}: Blink59 vs Gecko51 gap {gap} too wide");
        }
    }

    #[test]
    fn cluster6_adjacency_edgehtml_gecko46() {
        // Small enough that no single feature can pull the group apart
        // after scaling (the paper's cluster 6 merges them).
        for (name, v) in AUTHORED {
            let gap = v[Era::EdgeHtml.index()].abs_diff(v[Era::Gecko46.index()]);
            assert!(gap <= 3, "{name}: EdgeHtml vs Gecko46 gap {gap} too wide");
        }
    }

    #[test]
    fn gecko119_lands_near_blink90() {
        // Table 6: Firefox 119 flips into the Chrome/Edge 90-101 cluster.
        let mut total_gap_to_b90 = 0u32;
        let mut total_gap_to_g101 = 0u32;
        for (_, v) in AUTHORED {
            total_gap_to_b90 += v[Era::Gecko119.index()].abs_diff(v[Era::Blink90.index()]);
            total_gap_to_g101 += v[Era::Gecko119.index()].abs_diff(v[Era::Gecko101.index()]);
        }
        assert!(
            total_gap_to_b90 < total_gap_to_g101,
            "Gecko119 must be nearer Blink90 ({total_gap_to_b90}) than its own \
             predecessor era ({total_gap_to_g101})"
        );
    }

    #[test]
    fn era_steps_are_monotone_for_growing_interfaces() {
        // Within one engine family, counts never shrink (interfaces only
        // gain properties in our model, except the Gecko119 overhaul which
        // replaces the Element-adjacent shapes wholesale).
        let blink = [
            Era::Blink59,
            Era::Blink69,
            Era::Blink90,
            Era::Blink102,
            Era::Blink110,
            Era::Blink114,
            Era::Blink119,
        ];
        for (name, v) in AUTHORED {
            for w in blink.windows(2) {
                assert!(
                    v[w[1].index()] >= v[w[0].index()],
                    "{name}: Blink counts must be monotone at {:?}",
                    w
                );
            }
        }
    }

    #[test]
    fn procedural_counts_are_deterministic_and_monotone_in_richness() {
        let name = "TreeWalker";
        let a = own_property_count(name, Era::Blink110);
        let b = own_property_count(name, Era::Blink110);
        assert_eq!(a, b);
        // Evolving features grow (up to quirk noise of 2) with richness.
        if shape_class(name) == ShapeClass::Evolving {
            let old = own_property_count(name, Era::Blink59);
            let new = own_property_count(name, Era::Blink114);
            if let (Some(o), Some(n)) = (old, new) {
                assert!(n + 2 >= o, "{name} should not shrink much: {o} -> {n}");
            }
        }
    }

    #[test]
    fn about_30_percent_of_procedural_names_are_constant() {
        let constant = DEVIATION_PROTOTYPES
            .iter()
            .filter(|p| shape_class(p) == ShapeClass::Constant)
            .count();
        // ~30% of the non-authored 178, i.e. roughly 40-70 names.
        assert!(
            (30..=80).contains(&constant),
            "expected roughly 30% constants, got {constant}/200"
        );
    }

    #[test]
    fn config_sensitive_covers_serviceworker_and_rtc() {
        assert_eq!(
            shape_class("ServiceWorkerRegistration"),
            ShapeClass::ConfigSensitive
        );
        assert_eq!(
            shape_class("RTCPeerConnection"),
            ShapeClass::ConfigSensitive
        );
        assert_eq!(shape_class("PushManager"), ShapeClass::ConfigSensitive);
        assert_eq!(shape_class("Element"), ShapeClass::Evolving);
    }

    #[test]
    fn chrome_and_edge_same_version_identical() {
        for proto in DEVIATION_PROTOTYPES {
            let chrome = own_property_count(proto, Era::of(Engine::blink(110)));
            let edge = own_property_count(proto, Era::of(Engine::blink(110)));
            assert_eq!(chrome, edge);
        }
    }
}
