//! Request-stream framing for the risk server.
//!
//! Requests arrive as u16-LE length-prefixed frames. These helpers parse
//! a connection's pending byte buffer without ever panicking (this code
//! sits in the `cargo xtask lint` panic-safety zone): they destructure
//! and `get` instead of indexing, and an oversize header is reported as
//! a status rather than unwinding, so the server can answer every frame
//! that preceded it before failing the connection.

use fingerprint::MAX_SUBMISSION_BYTES;

/// How far the parser got through the connection's pending bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStatus {
    /// No complete frame buffered yet; keep reading.
    NeedMore,
    /// At least one complete frame is ready to assess.
    Ready,
    /// The next header declares an oversize body: answer what came before
    /// it, then fail the connection (no way to resynchronise past it).
    Oversize,
}

/// Classifies the front of `pending`.
pub fn frame_status(pending: &[u8]) -> FrameStatus {
    // Destructure instead of indexing: this parser faces the network, so
    // the panic-safety lint bans `pending[..]` on the serve path.
    let [len0, len1, body @ ..] = pending else {
        return FrameStatus::NeedMore;
    };
    let len = u16::from_le_bytes([*len0, *len1]) as usize;
    if len > MAX_SUBMISSION_BYTES {
        FrameStatus::Oversize
    } else if body.len() < len {
        FrameStatus::NeedMore
    } else {
        FrameStatus::Ready
    }
}

/// The declared body length of a buffered header, if two header bytes are
/// present.
fn header_len(pending: &[u8]) -> Option<usize> {
    match pending {
        [len0, len1, ..] => Some(u16::from_le_bytes([*len0, *len1]) as usize),
        _ => None,
    }
}

/// Splits up to `max` complete length-prefixed frames off the front of
/// `pending`, leaving any partial tail in place. The second return is true
/// when parsing stopped at an oversize header.
pub fn split_frames(pending: &mut Vec<u8>, max: usize) -> (Vec<Vec<u8>>, bool) {
    let mut frames = Vec::new();
    let mut offset = 0;
    let mut oversize = false;
    while frames.len() < max {
        let tail = pending.get(offset..).unwrap_or_default();
        match frame_status(tail) {
            FrameStatus::NeedMore => break,
            FrameStatus::Oversize => {
                oversize = true;
                break;
            }
            FrameStatus::Ready => {
                let Some(len) = header_len(tail) else { break };
                let Some(body) = tail.get(2..2 + len) else {
                    break;
                };
                frames.push(body.to_vec());
                offset += 2 + len;
            }
        }
    }
    pending.drain(..offset);
    (frames, oversize)
}

/// Number of complete frames buffered at the front of `pending` (stops
/// at a partial tail or an oversize header).
pub fn count_frames(pending: &[u8]) -> usize {
    let mut offset = 0;
    let mut n = 0;
    loop {
        let tail = pending.get(offset..).unwrap_or_default();
        if frame_status(tail) != FrameStatus::Ready {
            return n;
        }
        let Some(len) = header_len(tail) else {
            return n;
        };
        offset += 2 + len;
        n += 1;
    }
}

/// Resumable per-connection parse state: the pending byte buffer plus
/// the frame-boundary bookkeeping both server backends share.
///
/// The threaded backend owns one per connection worker; the reactor
/// backend owns one per connection slot and feeds it whatever each
/// readiness event delivered — the parse position survives across
/// arbitrarily split reads, so a frame torn over many readiness events
/// reassembles exactly once.
#[derive(Debug, Default)]
pub struct FrameAccumulator {
    pending: Vec<u8>,
}

impl FrameAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes after the current partial tail.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.pending.extend_from_slice(bytes);
    }

    /// Classifies the front of the buffer (see [`frame_status`]).
    pub fn status(&self) -> FrameStatus {
        frame_status(&self.pending)
    }

    /// Complete frames currently buffered (see [`count_frames`]).
    pub fn ready_frames(&self) -> usize {
        count_frames(&self.pending)
    }

    /// Whether any bytes are buffered at all — a timeout with an empty
    /// accumulator is keep-alive idleness, with a non-empty one a
    /// stalled partial frame.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Bytes currently buffered (complete frames plus any partial tail).
    pub fn buffered_bytes(&self) -> usize {
        self.pending.len()
    }

    /// Splits up to `max` complete frames off the front, leaving any
    /// partial tail in place (see [`split_frames`]).
    pub fn split(&mut self, max: usize) -> (Vec<Vec<u8>>, bool) {
        split_frames(&mut self.pending, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_resumes_across_arbitrary_chunk_boundaries() {
        let mut wire = Vec::new();
        for body in [&b"abc"[..], &b"defgh"[..], &b""[..]] {
            wire.extend_from_slice(&(body.len() as u16).to_le_bytes());
            wire.extend_from_slice(body);
        }
        // Feed one byte at a time: the accumulator must never lose its
        // place, and frames must pop out exactly once, in order.
        let mut acc = FrameAccumulator::new();
        let mut got = Vec::new();
        for b in &wire {
            acc.extend(&[*b]);
            let (frames, oversize) = acc.split(32);
            assert!(!oversize);
            got.extend(frames);
        }
        assert_eq!(got, vec![b"abc".to_vec(), b"defgh".to_vec(), Vec::new()]);
        assert!(acc.is_empty());
        assert_eq!(acc.ready_frames(), 0);
    }

    #[test]
    fn accumulator_reports_partial_and_oversize_state() {
        let mut acc = FrameAccumulator::new();
        assert_eq!(acc.status(), FrameStatus::NeedMore);
        acc.extend(&5u16.to_le_bytes());
        acc.extend(b"xy");
        assert_eq!(acc.status(), FrameStatus::NeedMore);
        assert!(!acc.is_empty());
        assert_eq!(acc.buffered_bytes(), 4);
        assert_eq!(acc.ready_frames(), 0);
        acc.extend(b"zzz");
        assert_eq!(acc.status(), FrameStatus::Ready);
        let (frames, _) = acc.split(32);
        assert_eq!(frames, vec![b"xyzzz".to_vec()]);

        acc.extend(&u16::MAX.to_le_bytes());
        assert_eq!(acc.status(), FrameStatus::Oversize);
        let (frames, oversize) = acc.split(32);
        assert!(frames.is_empty());
        assert!(oversize);
    }

    #[test]
    fn split_frames_parses_and_preserves_partial_tail() {
        let mut pending = Vec::new();
        for body in [&b"abc"[..], &b"defgh"[..]] {
            pending.extend_from_slice(&(body.len() as u16).to_le_bytes());
            pending.extend_from_slice(body);
        }
        pending.extend_from_slice(&5u16.to_le_bytes());
        pending.extend_from_slice(b"xy"); // incomplete body

        let (frames, oversize) = split_frames(&mut pending, 32);
        assert_eq!(frames, vec![b"abc".to_vec(), b"defgh".to_vec()]);
        assert!(!oversize);
        assert_eq!(pending, [&5u16.to_le_bytes()[..], b"xy"].concat());

        // `max` caps the batch.
        let mut two = Vec::new();
        for _ in 0..3 {
            two.extend_from_slice(&1u16.to_le_bytes());
            two.push(7);
        }
        let (frames, _) = split_frames(&mut two, 2);
        assert_eq!(frames.len(), 2);
        assert_eq!(count_frames(&two), 1);
    }

    #[test]
    fn split_frames_stops_at_oversize_header() {
        let mut pending = Vec::new();
        pending.extend_from_slice(&3u16.to_le_bytes());
        pending.extend_from_slice(b"abc");
        pending.extend_from_slice(&u16::MAX.to_le_bytes()); // oversize
        let (frames, oversize) = split_frames(&mut pending, 32);
        assert_eq!(frames, vec![b"abc".to_vec()]);
        assert!(oversize, "parsing must stop at the oversize header");
    }

    #[test]
    fn empty_and_header_only_buffers_need_more() {
        assert_eq!(frame_status(&[]), FrameStatus::NeedMore);
        assert_eq!(frame_status(&[3]), FrameStatus::NeedMore);
        assert_eq!(frame_status(&3u16.to_le_bytes()), FrameStatus::NeedMore);
        assert_eq!(count_frames(&[]), 0);
    }

    #[test]
    fn zero_length_frames_are_valid() {
        let mut pending = 0u16.to_le_bytes().to_vec();
        pending.extend_from_slice(&0u16.to_le_bytes());
        assert_eq!(count_frames(&pending), 2);
        let (frames, oversize) = split_frames(&mut pending, 32);
        assert_eq!(frames, vec![Vec::<u8>::new(), Vec::<u8>::new()]);
        assert!(!oversize);
        assert!(pending.is_empty());
    }
}
