//! Hygiene fixture (a "library" file: it lives under `src/`).

pub fn debug_dump(x: u32) -> u32 {
    println!("x = {x}");
    let p = unsafe { probe(x) };
    p
}
