//! Feature sets and fingerprint vectors.

use crate::probe::{FeatureKind, Probe};
use browser_engine::protodb::{DEVIATION_PROTOTYPES, TABLE8_PROTOTYPES};
use browser_engine::timebased;
use browser_engine::BrowserInstance;
use serde::{Deserialize, Serialize};

/// An ordered list of probes — the schema of a fingerprint vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSet {
    probes: Vec<Probe>,
}

impl FeatureSet {
    /// Builds a feature set from an explicit probe list.
    pub fn new(probes: Vec<Probe>) -> Self {
        Self { probes }
    }

    /// The paper's final 28-feature set (Table 8): 22 deviation-based
    /// count probes followed by 6 time-based presence probes.
    ///
    /// ```
    /// use browser_engine::{BrowserInstance, UserAgent, Vendor};
    /// use fingerprint::FeatureSet;
    ///
    /// let features = FeatureSet::table8();
    /// assert_eq!(features.len(), 28);
    /// let chrome = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112));
    /// let fingerprint = features.extract(&chrome);
    /// assert_eq!(fingerprint.len(), 28);
    /// // Chrome and same-version Edge run the same engine, so they probe
    /// // identically — the premise of the whole detector.
    /// let edge = BrowserInstance::genuine(UserAgent::new(Vendor::Edge, 112));
    /// assert_eq!(features.extract(&edge), fingerprint);
    /// ```
    pub fn table8() -> Self {
        let mut probes: Vec<Probe> = TABLE8_PROTOTYPES.iter().map(|p| Probe::count(p)).collect();
        probes.extend(
            timebased::table8_presence_probes()
                .into_iter()
                .map(Probe::Presence),
        );
        Self { probes }
    }

    /// The 513-probe set deployed for real-world collection (§6.2): the
    /// 200 deviation-based candidates of Appendix-3 plus the 313
    /// BrowserPrint-style presence probes.
    pub fn candidates_513() -> Self {
        let mut probes: Vec<Probe> = DEVIATION_PROTOTYPES
            .iter()
            .map(|p| Probe::count(p))
            .collect();
        probes.extend(
            timebased::browserprint_candidates()
                .into_iter()
                .map(Probe::Presence),
        );
        Self { probes }
    }

    /// Number of probes.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// True when the set holds no probes.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// The probes, in vector order.
    pub fn probes(&self) -> &[Probe] {
        &self.probes
    }

    /// Probe expressions, in vector order (feature names for reports).
    pub fn names(&self) -> Vec<String> {
        self.probes.iter().map(|p| p.expression()).collect()
    }

    /// Indices of the probes of a given kind.
    pub fn indices_of_kind(&self, kind: FeatureKind) -> Vec<usize> {
        self.probes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.kind() == kind)
            .map(|(i, _)| i)
            .collect()
    }

    /// Restricts the set to the probes at `indices` (in that order).
    pub fn subset(&self, indices: &[usize]) -> FeatureSet {
        FeatureSet {
            probes: indices.iter().map(|&i| self.probes[i].clone()).collect(),
        }
    }

    /// Runs every probe against a browser and returns the raw vector.
    pub fn extract(&self, browser: &BrowserInstance) -> Fingerprint {
        Fingerprint {
            values: self.probes.iter().map(|p| p.execute(browser)).collect(),
        }
    }
}

/// A raw fingerprint: one integer per probe of the producing
/// [`FeatureSet`], in set order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fingerprint {
    values: Vec<u32>,
}

impl Fingerprint {
    /// Wraps raw values (e.g. decoded from the wire).
    pub fn from_values(values: Vec<u32>) -> Self {
        Self { values }
    }

    /// The integer outputs, in feature order.
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the fingerprint holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The vector as `f64`, the ML pipeline's input row.
    pub fn as_f64(&self) -> Vec<f64> {
        self.values.iter().map(|&v| v as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::{UserAgent, Vendor};

    #[test]
    fn table8_has_28_features_22_plus_6() {
        let fs = FeatureSet::table8();
        assert_eq!(fs.len(), 28);
        assert_eq!(fs.indices_of_kind(FeatureKind::DeviationBased).len(), 22);
        assert_eq!(fs.indices_of_kind(FeatureKind::TimeBased).len(), 6);
        // Table order: deviation features first.
        assert_eq!(
            fs.names()[0],
            "Object.getOwnPropertyNames(Element.prototype).length"
        );
        assert_eq!(
            fs.names()[27],
            "CSSStyleDeclaration.prototype.hasOwnProperty('getPropertyValue')"
        );
    }

    #[test]
    fn candidate_set_has_513_probes() {
        let fs = FeatureSet::candidates_513();
        assert_eq!(fs.len(), 513);
        assert_eq!(fs.indices_of_kind(FeatureKind::DeviationBased).len(), 200);
        assert_eq!(fs.indices_of_kind(FeatureKind::TimeBased).len(), 313);
    }

    #[test]
    fn extraction_is_deterministic() {
        let fs = FeatureSet::table8();
        let b = BrowserInstance::genuine(UserAgent::new(Vendor::Firefox, 110));
        assert_eq!(fs.extract(&b), fs.extract(&b));
    }

    #[test]
    fn same_engine_same_fingerprint() {
        let fs = FeatureSet::table8();
        let chrome = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 111));
        let edge = BrowserInstance::genuine(UserAgent::new(Vendor::Edge, 111));
        assert_eq!(fs.extract(&chrome), fs.extract(&edge));
    }

    #[test]
    fn different_eras_different_fingerprints() {
        let fs = FeatureSet::table8();
        let old = fs.extract(&BrowserInstance::genuine(UserAgent::new(
            Vendor::Chrome,
            60,
        )));
        let new = fs.extract(&BrowserInstance::genuine(UserAgent::new(
            Vendor::Chrome,
            115,
        )));
        assert_ne!(old, new);
    }

    #[test]
    fn subset_reorders() {
        let fs = FeatureSet::table8();
        let sub = fs.subset(&[27, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.probes()[1], fs.probes()[0]);
    }

    #[test]
    fn fingerprint_as_f64_round_trips() {
        let fp = Fingerprint::from_values(vec![3, 0, 1]);
        assert_eq!(fp.as_f64(), vec![3.0, 0.0, 1.0]);
        assert_eq!(fp.len(), 3);
    }
}
