//! Fused fixed-point inference: scaler + PCA folded into one integer
//! affine transform, with a certified branch-free centroid scan.
//!
//! The staged f64 serve path pays three passes per frame — standardise,
//! centre + project, then a distance scan — each walking its own arrays.
//! This module compiles a fitted `(StandardScaler, Pca, KMeans)` triple
//! into a single [`QuantModel`]:
//!
//! * the scaler and PCA collapse algebraically into one affine map
//!   `p_j = Σ_i x_i·w_ij + b_j` with `w_ij = C_ij / s_i` and
//!   `b_j = −Σ_i (m_i / s_i + pm_i)·C_ij`, so a frame is projected in a
//!   single fused pass;
//! * weights, biases, and centroids are quantised to fixed point
//!   (`round(v · 2^F)` as `i64`), so the fused projection runs in exact
//!   integer arithmetic — identical on every machine;
//! * the distance scan runs over the quantised grid in plain (FMA-free)
//!   IEEE f64 — also bit-identical on every machine — against a flat
//!   cluster-major centroid table, fusing scan and argmin into one
//!   branch-free, SIMD-friendly pass with a register-resident
//!   accumulator; its rounding is absorbed by the margin certificate.
//!
//! # Why decisions cannot flip
//!
//! Quantisation changes arithmetic, not decisions. Every compile-time
//! rounding error is bounded, and at predict time the scan computes the
//! best and second-best quantised-grid distances. The winner is accepted
//! only when the margin between them exceeds the total worst-case error
//! of *both* paths (fixed-point rounding and this scan's f64 rounding
//! here, floating-point accumulation in the staged path). Inside that
//! margin no bounded error can reorder
//! the two clusters, so the staged f64 path provably agrees. When the
//! margin is too small — or a frame's values fall outside the integer
//! fast-path domain — the caller is told to fall back to the staged
//! path for that frame ([`QuantModel::predict_row`] returns `None`).
//! Byte-identical verdict streams therefore hold by construction, not
//! by testing alone.

use crate::error::MlError;
use crate::kmeans::KMeans;
use crate::pca::Pca;
use crate::scaler::StandardScaler;

/// Fixed-point shift ceiling: `F ≤ 32` keeps quantised magnitudes far
/// inside the `2^58` accumulator budget for realistic models.
const MAX_SHIFT: u32 = 32;

/// Minimum acceptable shift. Below this the fixed-point grid is so
/// coarse that nearly every frame would fail its margin certificate and
/// fall back, making compilation pointless.
const MIN_SHIFT: u32 = 8;

/// Bit budget for any single quantised projection value or centroid
/// coordinate: the exact `i64` projection accumulator never exceeds
/// `2^58`, leaving five bits of sign/carry headroom.
const ACC_BITS: u32 = 58;

/// Component ceiling: keeps the distance-scan accumulation error term
/// (proportional to `n_components·u`) far below the certificate slop.
const MAX_COMPONENTS: usize = 64;

/// Per-coordinate input magnitude the shift selection plans for.
/// Fingerprint attributes are small property counts; `2^24` leaves four
/// orders of magnitude of headroom. Larger inputs still serve correctly
/// — the authoritative per-row [`QuantModel::x_limit`] check routes them
/// to the staged fallback.
const X_TARGET: f64 = (1u64 << 24) as f64;

/// A compiled model: one fixed-point affine transform plus a
/// structure-of-arrays centroid table, with the precomputed error
/// bounds that make its decisions certifiable.
#[derive(Debug, Clone)]
pub struct QuantModel {
    n_features: usize,
    n_components: usize,
    k: usize,
    /// Fixed-point shift `F`: stored integers are `round(v · 2^F)`.
    shift: u32,
    /// Fused weights, component-major: `weights[j·n_features + i]`.
    weights: Vec<i64>,
    /// Fused bias per component.
    bias: Vec<i64>,
    /// Flat quantised centroid table in model units, one contiguous
    /// coordinate block per centroid: `centroids_f[c·n_components + j]`
    /// holds `round(v·2^F) as f64 · 2^-F`. Values snap to the same
    /// fixed-point grid as the projection; the i64→f64 conversion's
    /// rounding is covered by `conv_err`.
    centroids_f: Vec<f64>,
    /// Largest per-coordinate input the integer path accepts, derived
    /// from the *rounded* weights so overflow is impossible.
    x_limit: i64,
    x_limit_f: f64,
    /// `2^-F`, for converting integer projections back to model units.
    inv_scale: f64,
    /// `2^-(F+1)`: half a fixed-point ulp.
    half_ulp: f64,
    /// Per-unit-of-input projection error bound (see margin certificate).
    err_per_unit: f64,
    /// Input-independent projection error bound.
    err_const: f64,
    /// `sqrt(n_components)`, for lifting coordinate bounds to L2.
    sqrt_nc: f64,
    /// Relative floating-point slop coefficient covering the distance
    /// accumulation of *both* scans (the staged f64 path and this
    /// module's f64 scan over the quantised grid).
    fp_slop: f64,
    /// Per-coordinate absolute error of representing quantised-grid
    /// values in f64: `u/2 · max(|projection| bound, |centroid| max)`
    /// in model units. Exact below `2^53`; this covers the rest.
    conv_err: f64,
}

/// Reusable per-thread buffers for [`QuantModel::predict_row`], so the
/// batch drain allocates nothing per frame.
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    x: Vec<i64>,
    proj: Vec<i64>,
    proj_f: Vec<f64>,
}

impl QuantModel {
    /// Compiles a fitted pipeline into the fused fixed-point form.
    ///
    /// Fails when the three stages disagree on dimensions, when the
    /// model is wider than [`MAX_COMPONENTS`], when any fused
    /// coefficient is non-finite, or when the magnitudes force the
    /// shift below [`MIN_SHIFT`].
    pub fn compile(scaler: &StandardScaler, pca: &Pca, kmeans: &KMeans) -> Result<Self, MlError> {
        let n = scaler.n_features();
        if pca.n_features() != n {
            return Err(MlError::DimensionMismatch {
                got: pca.n_features(),
                expected: n,
                what: "PCA input width",
            });
        }
        let nc = pca.n_components();
        if kmeans.centroids().cols() != nc {
            return Err(MlError::DimensionMismatch {
                got: kmeans.centroids().cols(),
                expected: nc,
                what: "centroid width",
            });
        }
        if nc > MAX_COMPONENTS {
            return Err(MlError::InvalidParameter {
                name: "n_components",
                reason: format!("must be <= {MAX_COMPONENTS} for certifiable distances, got {nc}"),
            });
        }
        let k = kmeans.k();

        // Fuse scaler + PCA: p_j = Σ_i x_i·w_ij + b_j.
        let sm = scaler.means();
        let ss = scaler.scales();
        let pm = pca.means();
        let comp = pca.components();
        let mut w = vec![0.0f64; nc * n];
        let mut b = vec![0.0f64; nc];
        for j in 0..nc {
            let mut bj = 0.0;
            for i in 0..n {
                let cij = comp[(i, j)];
                w[j * n + i] = cij / ss[i];
                bj += (sm[i] / ss[i] + pm[i]) * cij;
            }
            b[j] = -bj;
        }

        // Shift selection: the largest value either side of the affine
        // map can take must stay inside the 2^58 accumulator budget at
        // the planned per-coordinate input magnitude.
        let budget = (1u64 << ACC_BITS) as f64;
        let mut max_affine = 1.0f64;
        for j in 0..nc {
            let sw: f64 = w[j * n..(j + 1) * n].iter().map(|v| v.abs()).sum();
            max_affine = max_affine.max(sw * X_TARGET + b[j].abs());
        }
        let mut max_centroid = 1.0f64;
        for row in kmeans.centroids().iter_rows() {
            for &v in row {
                max_centroid = max_centroid.max(v.abs());
            }
        }
        if !(max_affine.is_finite() && max_centroid.is_finite()) {
            return Err(MlError::InvalidParameter {
                name: "model",
                reason: "fused coefficients are non-finite".into(),
            });
        }
        let f1 = (budget / max_affine).log2().floor();
        let f2 = (budget / max_centroid).log2().floor();
        let shift_f = f1.min(f2).min(f64::from(MAX_SHIFT));
        if shift_f.is_nan() || shift_f < f64::from(MIN_SHIFT) {
            return Err(MlError::InvalidParameter {
                name: "shift",
                reason: format!(
                    "model magnitudes leave only {shift_f} fractional bits; \
                     need at least {MIN_SHIFT}"
                ),
            });
        }
        let shift = shift_f as u32;
        let scale = (1u64 << shift) as f64;

        let quantize = |v: f64| (v * scale).round() as i64;
        let weights: Vec<i64> = w.iter().map(|&v| quantize(v)).collect();
        let bias: Vec<i64> = b.iter().map(|&v| quantize(v)).collect();
        // Flat centroid table, one contiguous coordinate block per
        // centroid: centroids[c·n_components + j].
        let mut centroids = vec![0i64; nc * k];
        for (c, row) in kmeans.centroids().iter_rows().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                centroids[c * nc + j] = quantize(v);
            }
        }

        // Authoritative input ceiling from the *rounded* integers: with
        // every |x_i| ≤ x_limit the projection accumulator provably
        // stays under 2^58, whatever the f64 estimates said.
        let max_bias = bias.iter().map(|v| v.unsigned_abs()).max().unwrap_or(0);
        let mut max_wsum: u128 = 1;
        for j in 0..nc {
            let sw: u128 = weights[j * n..(j + 1) * n]
                .iter()
                .map(|v| u128::from(v.unsigned_abs()))
                .sum();
            max_wsum = max_wsum.max(sw);
        }
        let headroom = u128::from((1u64 << ACC_BITS) - 1 - max_bias);
        let x_limit = (headroom / max_wsum).min(1u128 << 53) as i64;
        if x_limit < 1 {
            return Err(MlError::InvalidParameter {
                name: "x_limit",
                reason: "rounded weights leave no integer input headroom".into(),
            });
        }

        // Margin-certificate bounds. `a` dominates the relative error
        // of both paths' projections per unit of input mass; `d` the
        // input-independent part (means and PCA centring). The constant
        // 8·(n+4)·u generously covers the staged path's division,
        // subtraction, and n-term dot-product accumulation error as
        // well as the fused f64 pre-quantisation arithmetic.
        let u = 2f64.powi(-52);
        let c1 = 8.0 * (n as f64 + 4.0) * u;
        let mut a = 0.0f64;
        let mut d = 0.0f64;
        for j in 0..nc {
            let mut aj = 0.0;
            let mut dj = 0.0;
            for i in 0..n {
                let cij = comp[(i, j)].abs();
                aj += cij / ss[i];
                dj += (sm[i].abs() / ss[i] + pm[i].abs()) * cij;
            }
            a = a.max(aj);
            d = d.max(dj);
        }
        let half_ulp = 2f64.powi(-(shift as i32 + 1));
        // Quantised-weight rounding contributes ≤ half_ulp per unit of
        // input plus half_ulp for the bias; both paths' f64 error is
        // covered by the c1 terms.
        let err_per_unit = c1 * a + half_ulp;
        let err_const = c1 * d + half_ulp;

        let inv_scale = 1.0 / scale;
        let centroids_f: Vec<f64> = centroids.iter().map(|&v| v as f64 * inv_scale).collect();
        // Representing quantised values in f64 is exact below 2^53 but
        // the accumulator budget allows up to 2^58; u/2 of the largest
        // possible magnitude (projection bound or centroid max, in
        // model units) bounds the per-coordinate conversion error.
        let proj_bound = (1u64 << ACC_BITS) as f64 * inv_scale;
        let cent_bound = centroids_f.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let conv_err = 0.5 * u * proj_bound.max(cent_bound);

        Ok(Self {
            n_features: n,
            n_components: nc,
            k,
            shift,
            weights,
            bias,
            centroids_f,
            x_limit,
            x_limit_f: x_limit as f64,
            inv_scale,
            half_ulp,
            err_per_unit,
            err_const,
            sqrt_nc: (nc as f64).sqrt(),
            // Covers the squared-distance accumulation of both scans:
            // the staged path's (≤ (n+nc+4)·u relative) and this
            // module's f64 scan over the quantised grid (≤ (nc+2)·u).
            fp_slop: 32.0 * (n as f64 + nc as f64 + 4.0) * u,
            conv_err,
        })
    }

    /// Input feature width the model expects.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Retained PCA components.
    pub fn n_components(&self) -> usize {
        self.n_components
    }

    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Fixed-point shift `F` chosen at compile time.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Largest per-coordinate input value the integer fast path accepts.
    pub fn x_limit(&self) -> i64 {
        self.x_limit
    }

    /// Fresh scratch buffers sized for this model.
    pub fn scratch(&self) -> QuantScratch {
        QuantScratch {
            x: vec![0; self.n_features],
            proj: vec![0; self.n_components],
            proj_f: vec![0.0; self.n_components],
        }
    }

    /// Predicts the nearest centroid for one frame on the integer path.
    ///
    /// Returns `Ok(Some(cluster))` only when the margin certificate
    /// proves the staged f64 path would pick the same cluster.
    /// `Ok(None)` means the caller must fall back to the staged path
    /// for this frame: its values lie outside the integer domain
    /// (negative, fractional, or above [`QuantModel::x_limit`]), or the
    /// two nearest centroids are too close to certify.
    pub fn predict_row(
        &self,
        row: &[f64],
        scratch: &mut QuantScratch,
    ) -> Result<Option<usize>, MlError> {
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                got: row.len(),
                expected: self.n_features,
                what: "row length",
            });
        }
        scratch.x.resize(self.n_features, 0);
        scratch.proj.resize(self.n_components, 0);
        scratch.proj_f.resize(self.n_components, 0.0);

        // Integer-domain gate + input mass for the error bound. The
        // integrality test is a cast round-trip rather than `fract()`:
        // below `x_limit < 2^53` the `as i64` truncation is exact, so
        // the round-trip equals `v` iff `v` is an integer — and it
        // stays inline SIMD on baseline x86-64, where `fract()` lowers
        // to a libm call that would dominate this tiny kernel. The loop
        // is branch-free — one `ok` accumulator instead of per-element
        // early-outs — so it pipelines; out-of-domain values saturate
        // harmlessly (`as i64` is defined for NaN/∞) and are discarded
        // by the single check at the end. The row is converted once
        // here; the projection below reuses it.
        let mut sum_x = 0.0f64;
        let mut ok = true;
        for (xi, &v) in scratch.x.iter_mut().zip(row) {
            let iv = v as i64;
            ok &= v >= 0.0;
            ok &= v <= self.x_limit_f;
            ok &= iv as f64 == v;
            *xi = iv;
            sum_x += v;
        }
        if !ok {
            return Ok(None);
        }

        // Fused projection: exact i64 (bounded by the 2^58 budget),
        // then converted once to model units for the scan — `2^-F` is a
        // power of two so only the i64→f64 cast can round, which
        // `conv_err` covers.
        let n = self.n_features;
        for (j, (p, pf)) in scratch
            .proj
            .iter_mut()
            .zip(scratch.proj_f.iter_mut())
            .enumerate()
        {
            let mut acc = self.bias[j];
            for (wi, &xv) in self.weights[j * n..(j + 1) * n].iter().zip(&scratch.x) {
                acc += wi * xv;
            }
            *p = acc;
            *pf = acc as f64 * self.inv_scale;
        }

        // Distance scan + argmin fused into one pass over the flat
        // centroid table: each centroid's contiguous coordinate block
        // streams against the projection in plain IEEE f64 (no FMA —
        // bit-identical everywhere) with the accumulator living in
        // registers — no per-centroid distance buffer is ever written
        // back, and `chunks_exact` keeps the inner loop free of bounds
        // checks and lets it vectorise. Strict `<` keeps the lowest
        // index on ties, like the staged scan; the runner-up feeds the
        // margin certificate, which absorbs this scan's rounding.
        let mut best = 0usize;
        let mut d_best = f64::INFINITY;
        let mut d_second = f64::INFINITY;
        for (c, block) in self.centroids_f.chunks_exact(self.n_components).enumerate() {
            let mut acc = 0.0f64;
            for (&pj, &cq) in scratch.proj_f.iter().zip(block) {
                let diff = pj - cq;
                acc += diff * diff;
            }
            if acc < d_best {
                d_second = d_best;
                d_best = acc;
                best = c;
            } else if acc < d_second {
                d_second = acc;
            }
        }
        if self.k == 1 {
            // A single centroid cannot be reordered.
            return Ok(Some(0));
        }

        // Margin certificate, in model units. Each projected coordinate
        // of the two paths differs by at most e, each centroid
        // coordinate by half an ulp, and representing the quantised
        // grid in f64 adds conv_err per coordinate; so the two paths'
        // distances to any centroid differ by at most g (L2 lift).
        // fp_slop covers both scans' squared-distance accumulation. A
        // gap wider than both sides' worst case means no bounded error
        // can swap winner and runner-up.
        let d1 = d_best.sqrt();
        let d2 = d_second.sqrt();
        let e = self.err_per_unit * sum_x + self.err_const;
        let g = self.sqrt_nc * (e + self.half_ulp + 2.0 * self.conv_err);
        let slop = self.fp_slop * (d2 + g);
        if d2 - d1 > 2.0 * g + slop {
            Ok(Some(best))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::KMeansConfig;
    use crate::matrix::Matrix;

    /// Builds a small fitted pipeline over integer-count-shaped data.
    fn fitted(rows: &[Vec<f64>], nc: usize, k: usize) -> (StandardScaler, Pca, KMeans) {
        let x = Matrix::from_rows(rows).unwrap();
        let (scaler, scaled) = StandardScaler::fit_transform(&x).unwrap();
        let pca = Pca::fit(&scaled, nc).unwrap();
        let projected = pca.transform(&scaled).unwrap();
        let kmeans = KMeans::fit(&projected, KMeansConfig::new(k)).unwrap();
        (scaler, pca, kmeans)
    }

    fn staged_predict(scaler: &StandardScaler, pca: &Pca, kmeans: &KMeans, row: &[f64]) -> usize {
        let s = scaler.transform_row(row).unwrap();
        let p = pca.transform_row(&s).unwrap();
        kmeans.predict_row(&p).unwrap()
    }

    fn grid_rows() -> Vec<Vec<f64>> {
        // Two well-separated integer blobs in 4 features.
        let mut rows = Vec::new();
        for a in 0..5 {
            for b in 0..5 {
                rows.push(vec![f64::from(a), f64::from(b), f64::from(a + b), 1.0]);
                rows.push(vec![
                    f64::from(a + 40),
                    f64::from(b + 40),
                    f64::from(a + b + 80),
                    7.0,
                ]);
            }
        }
        rows
    }

    #[test]
    fn certified_predictions_match_the_staged_path() {
        let rows = grid_rows();
        let (scaler, pca, kmeans) = fitted(&rows, 2, 2);
        let q = QuantModel::compile(&scaler, &pca, &kmeans).unwrap();
        let mut scratch = q.scratch();
        let mut certified = 0usize;
        for row in &rows {
            match q.predict_row(row, &mut scratch).unwrap() {
                Some(c) => {
                    certified += 1;
                    assert_eq!(c, staged_predict(&scaler, &pca, &kmeans, row));
                }
                None => {
                    // Fallback is always allowed; agreement is checked
                    // end to end by the detector proptest.
                }
            }
        }
        assert!(
            certified > rows.len() / 2,
            "well-separated blobs should mostly certify ({certified}/{})",
            rows.len()
        );
    }

    #[test]
    fn out_of_domain_rows_fall_back() {
        let rows = grid_rows();
        let (scaler, pca, kmeans) = fitted(&rows, 2, 2);
        let q = QuantModel::compile(&scaler, &pca, &kmeans).unwrap();
        let mut scratch = q.scratch();
        for bad in [
            vec![-1.0, 0.0, 0.0, 1.0],                     // negative
            vec![0.5, 0.0, 0.0, 1.0],                      // fractional
            vec![q.x_limit() as f64 * 2.0, 0.0, 0.0, 1.0], // too large
            vec![f64::NAN, 0.0, 0.0, 1.0],                 // non-finite
        ] {
            assert_eq!(q.predict_row(&bad, &mut scratch).unwrap(), None);
        }
    }

    #[test]
    fn single_centroid_always_certifies() {
        let rows = grid_rows();
        let (scaler, pca, kmeans) = fitted(&rows, 2, 1);
        let q = QuantModel::compile(&scaler, &pca, &kmeans).unwrap();
        let mut scratch = q.scratch();
        for row in &rows {
            assert_eq!(q.predict_row(row, &mut scratch).unwrap(), Some(0));
        }
    }

    #[test]
    fn width_mismatch_is_an_error_not_a_fallback() {
        let rows = grid_rows();
        let (scaler, pca, kmeans) = fitted(&rows, 2, 2);
        let q = QuantModel::compile(&scaler, &pca, &kmeans).unwrap();
        let mut scratch = q.scratch();
        assert!(matches!(
            q.predict_row(&[1.0, 2.0], &mut scratch),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn compile_rejects_dimension_disagreements() {
        let rows = grid_rows();
        let (scaler, pca, kmeans) = fitted(&rows, 2, 2);
        // A scaler fitted on a different width than the PCA.
        let narrow = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let other = StandardScaler::fit(&narrow).unwrap();
        assert!(QuantModel::compile(&other, &pca, &kmeans).is_err());
        // A k-means fitted in a different projection width.
        let projected = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let wrong_k = KMeans::fit(&projected, KMeansConfig::new(1)).unwrap();
        assert!(QuantModel::compile(&scaler, &pca, &wrong_k).is_err());
    }

    #[test]
    fn shift_stays_in_the_planned_window() {
        let rows = grid_rows();
        let (scaler, pca, kmeans) = fitted(&rows, 2, 2);
        let q = QuantModel::compile(&scaler, &pca, &kmeans).unwrap();
        assert!(q.shift() >= MIN_SHIFT && q.shift() <= MAX_SHIFT);
        assert!(q.x_limit() >= 1 << 20, "count-scale inputs must qualify");
    }

    #[test]
    fn zero_variance_columns_survive_compilation() {
        // Constant columns get scale 1.0 from the scaler; the fused
        // weights must stay finite and the model must still certify.
        let mut rows = grid_rows();
        for r in &mut rows {
            r.push(3.0); // constant extra column
        }
        let (scaler, pca, kmeans) = fitted(&rows, 2, 2);
        let q = QuantModel::compile(&scaler, &pca, &kmeans).unwrap();
        let mut scratch = q.scratch();
        let mut agree = 0usize;
        for row in &rows {
            if let Some(c) = q.predict_row(row, &mut scratch).unwrap() {
                assert_eq!(c, staged_predict(&scaler, &pca, &kmeans, row));
                agree += 1;
            }
        }
        assert!(agree > 0);
    }
}
