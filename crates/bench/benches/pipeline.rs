//! Benchmarks for the model pipeline: offline training stages and the
//! online assessment path (§6.4/§6.5). The online path is the one with a
//! latency budget; training is offline by design.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use fingerprint::FeatureSet;
use polygraph_core::{Detector, TrainConfig, TrainedModel, TrainingSet};
use polygraph_ml::iforest::IsolationForestConfig;
use polygraph_ml::kmeans::elbow_scan_with_pool;
use polygraph_ml::kmeans::KMeansConfig;
use polygraph_ml::{IsolationForest, KMeans, Matrix, Pca, StandardScaler, ThreadPool};
use traffic::{generate, TrafficConfig};

/// A deterministic 8k-session training window shared by all benches.
fn training_window() -> (FeatureSet, TrainingSet) {
    let fs = FeatureSet::table8();
    let data = generate(&fs, &TrafficConfig::paper_training().with_sessions(8_000));
    let (rows, uas) = data.rows_and_user_agents();
    (fs, TrainingSet::from_rows(rows, uas).expect("well-formed"))
}

fn bench_training_stages(c: &mut Criterion) {
    let (_, training) = training_window();
    let x = training.to_matrix().expect("matrix");
    let (_, scaled) = StandardScaler::fit_transform(&x).expect("finite training data");

    let mut c = c.benchmark_group("stages");
    c.sample_size(20); // k-means and forest fits take ~100s of ms each
    c.bench_function("scaler fit+transform (8k x 28)", |b| {
        b.iter(|| black_box(StandardScaler::fit_transform(black_box(&x))))
    });
    c.bench_function("PCA fit 7 components (8k x 28)", |b| {
        b.iter(|| black_box(Pca::fit(black_box(&scaled), 7).unwrap()))
    });
    let pca = Pca::fit(&scaled, 7).unwrap();
    let projected = pca.transform(&scaled).unwrap();
    c.bench_function("k-means fit k=11 (8k x 7)", |b| {
        b.iter(|| {
            black_box(
                KMeans::fit(black_box(&projected), KMeansConfig::new(11).with_n_init(1)).unwrap(),
            )
        })
    });
    c.bench_function("isolation forest fit+score (8k x 28)", |b| {
        b.iter(|| {
            let f = IsolationForest::fit(
                black_box(&scaled),
                IsolationForestConfig {
                    n_trees: 50,
                    sample_size: 256,
                    seed: 1,
                },
            )
            .unwrap();
            black_box(f.score(&scaled))
        })
    });
    c.finish();
}

fn bench_full_training(c: &mut Criterion) {
    let (fs, training) = training_window();
    let config = TrainConfig {
        n_init: 1,
        ..TrainConfig::default()
    };
    let mut group = c.benchmark_group("training");
    group.sample_size(10); // a full fit takes seconds; keep the run bounded
    group.bench_function("full training pipeline (8k sessions)", |b| {
        b.iter_batched(
            || (fs.clone(), training.clone()),
            |(fs, training)| black_box(TrainedModel::fit(fs, &training, config).unwrap()),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_online_assessment(c: &mut Criterion) {
    let (fs, training) = training_window();
    let model = TrainedModel::fit(fs, &training, TrainConfig::default()).expect("train");
    let detector = Detector::new(model);
    let row = training.rows()[0].clone();
    let ua = training.user_agents()[0];

    c.bench_function("online assessment (scale+project+assign+risk)", |b| {
        b.iter(|| black_box(detector.assess(black_box(&row), black_box(ua)).unwrap()))
    });
}

fn bench_matrix_ops(c: &mut Criterion) {
    let a = Matrix::from_vec(128, 28, (0..128 * 28).map(|i| (i % 97) as f64).collect()).unwrap();
    c.bench_function("covariance 128x28", |b| {
        b.iter(|| black_box(a.covariance().unwrap()))
    });
}

/// Serial vs. parallel comparisons for the pooled kernels. The parallel
/// variants are bit-identical to the serial ones (see
/// `tests/parallel_determinism.rs`), so any speedup is free accuracy-wise;
/// on a multi-core host the k-means restart sweep is the headline number.
fn bench_serial_vs_parallel(c: &mut Criterion) {
    let (_, training) = training_window();
    let x = training.to_matrix().expect("matrix");
    let (_, scaled) = StandardScaler::fit_transform(&x).expect("finite training data");
    let pca = Pca::fit(&scaled, 7).unwrap();
    let projected = pca.transform(&scaled).unwrap();
    let pool = ThreadPool::new(4);

    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);

    let kcfg = KMeansConfig::new(11).with_n_init(10);
    group.bench_function("k-means fit n_init=10 serial", |b| {
        b.iter(|| black_box(KMeans::fit(black_box(&projected), kcfg).unwrap()))
    });
    group.bench_function("k-means fit n_init=10 pool(4)", |b| {
        b.iter(|| black_box(KMeans::fit_with_pool(black_box(&projected), kcfg, &pool).unwrap()))
    });

    let fcfg = IsolationForestConfig {
        n_trees: 100,
        sample_size: 256,
        seed: 1,
    };
    group.bench_function("iforest fit+score 100 trees serial", |b| {
        b.iter(|| {
            let f = IsolationForest::fit(black_box(&scaled), fcfg).unwrap();
            black_box(f.score(&scaled))
        })
    });
    group.bench_function("iforest fit+score 100 trees pool(4)", |b| {
        b.iter(|| {
            let f = IsolationForest::fit_with_pool(black_box(&scaled), fcfg, &pool).unwrap();
            black_box(f.score_with_pool(&scaled, &pool))
        })
    });

    group.bench_function("covariance 8k x 28 serial", |b| {
        b.iter(|| black_box(scaled.covariance().unwrap()))
    });
    group.bench_function("covariance 8k x 28 pool(4)", |b| {
        b.iter(|| black_box(scaled.covariance_with_pool(&pool).unwrap()))
    });

    let ks = [2usize, 4, 6, 8, 10, 12];
    group.bench_function("elbow scan 6 candidates serial", |b| {
        b.iter(|| {
            black_box(
                elbow_scan_with_pool(black_box(&projected), &ks, 7, &ThreadPool::serial()).unwrap(),
            )
        })
    });
    group.bench_function("elbow scan 6 candidates pool(4)", |b| {
        b.iter(|| black_box(elbow_scan_with_pool(black_box(&projected), &ks, 7, &pool).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_training_stages,
    bench_full_training,
    bench_online_assessment,
    bench_matrix_ops,
    bench_serial_vs_parallel
);
criterion_main!(benches);
