//! Table 4 (§7.1): tag enrichment of the sessions Browser Polygraph flags,
//! versus all traffic and a randomly chosen batch of equal size.

use polygraph_bench::{header, parse_options, pct, report, train_paper_model};
use polygraph_core::Detector;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use traffic::Session;

fn tag_rates(sessions: &[&Session]) -> (f64, f64, f64) {
    let n = sessions.len().max(1) as f64;
    (
        sessions.iter().filter(|s| s.tags.untrusted_ip).count() as f64 / n,
        sessions.iter().filter(|s| s.tags.untrusted_cookie).count() as f64 / n,
        sessions.iter().filter(|s| s.tags.ato).count() as f64 / n,
    )
}

fn row(label: &str, paper: (&str, &str, &str), measured: (f64, f64, f64)) {
    println!(
        "  {label:<44} paper: {:>5} {:>5} {:>6}   measured: {:>7} {:>7} {:>7}",
        paper.0,
        paper.1,
        paper.2,
        pct(measured.0),
        pct(measured.1),
        pct(measured.2)
    );
}

fn main() {
    let opts = parse_options();
    println!(
        "training Browser Polygraph on {} simulated sessions ...",
        opts.sessions
    );
    let (model, data) = train_paper_model(opts);
    let detector = Detector::new(model);

    // Assess every session, as the deployed system does continuously.
    let mut flagged: Vec<(&Session, u32)> = Vec::new();
    for s in &data.sessions {
        let a = detector
            .assess(&s.row(), s.claimed)
            .expect("assessment succeeds");
        if a.flagged {
            flagged.push((s, a.risk_factor));
        }
    }

    header("Table 4: tag rates by batch (Untrusted_IP / Untrusted_Cookie / ATO)");
    let all: Vec<&Session> = data.sessions.iter().collect();
    row("All users", ("51%", "49%", "0.43%"), tag_rates(&all));

    let flagged_all: Vec<&Session> = flagged.iter().map(|(s, _)| *s).collect();
    row(
        "Flagged by Browser Polygraph (all)",
        ("78%", "75%", "2%"),
        tag_rates(&flagged_all),
    );

    let rf1: Vec<&Session> = flagged
        .iter()
        .filter(|(_, r)| *r > 1)
        .map(|(s, _)| *s)
        .collect();
    row(
        "Flagged (risk factor > 1)",
        ("93%", "89%", "3.89%"),
        tag_rates(&rf1),
    );

    let rf4: Vec<&Session> = flagged
        .iter()
        .filter(|(_, r)| *r > 4)
        .map(|(s, _)| *s)
        .collect();
    row(
        "Flagged (risk factor > 4)",
        ("94%", "85%", "5.83%"),
        tag_rates(&rf4),
    );

    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0xABCD);
    let random: Vec<&Session> = all
        .choose_multiple(&mut rng, flagged_all.len())
        .copied()
        .collect();
    row(
        "Randomly-chosen (same size)",
        ("48%", "53%", "0.22%"),
        tag_rates(&random),
    );

    header("flag volume");
    report(
        "sessions flagged",
        &format!("897 / 205k ({:.2}%)", 100.0 * 897.0 / 205_000.0),
        &format!(
            "{} / {} ({})",
            flagged.len(),
            data.sessions.len(),
            pct(flagged.len() as f64 / data.sessions.len() as f64)
        ),
    );
    report(
        "flagged, risk factor > 1",
        "(subset)",
        &rf1.len().to_string(),
    );
    report(
        "flagged, risk factor > 4",
        "(subset)",
        &rf4.len().to_string(),
    );

    // Sanity: how much of the flagged batch is actual fraud?
    let fraud_in_flagged = flagged_all
        .iter()
        .filter(|s| s.truth.is_detectable_fraud())
        .count();
    let detectable_total = data
        .sessions
        .iter()
        .filter(|s| s.truth.is_detectable_fraud())
        .count();
    header("ground truth (simulation only — the paper could not see this)");
    report(
        "detectable fraud recalled",
        "n/a",
        &format!(
            "{fraud_in_flagged} / {detectable_total} ({})",
            pct(fraud_in_flagged as f64 / detectable_total.max(1) as f64)
        ),
    );
}
