//! The metrics registry: named metric slots plus span timers.
//!
//! Hot paths call [`Registry::counter`] / [`Registry::histogram`] once at
//! startup, keep the returned `Arc`, and touch only atomics per event.
//! The registry's map lock is taken only at registration and snapshot
//! time, never per-frame.

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{HistogramSnapshot, Snapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// A named-metric registry with an injected [`Clock`].
#[derive(Debug)]
pub struct Registry {
    clock: Arc<dyn Clock>,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// A registry reading time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// A registry on the production [`MonotonicClock`].
    pub fn monotonic() -> Self {
        Self::new(Arc::new(MonotonicClock::new()))
    }

    /// The injected clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::slot(lock_or_recover(&self.counters), name)
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::slot(lock_or_recover(&self.gauges), name)
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Self::slot(lock_or_recover(&self.histograms), name)
    }

    /// Starts a span whose duration is recorded into histogram `name`
    /// when the returned guard drops.
    pub fn span(&self, name: &str) -> Span {
        Span::start(self.histogram(name), Arc::clone(&self.clock))
    }

    /// A point-in-time copy of every metric, with names in lexicographic
    /// (BTreeMap) order. Each histogram's `count` is derived from the
    /// single bucket-array copy taken here, so `sum-of-buckets == count`
    /// holds in every snapshot — even mid-traffic. Distinct metrics (and
    /// a histogram's `sum`) are still read one atomic at a time, so
    /// quiesce first when exact *cross*-metric identities must hold.
    pub fn snapshot(&self) -> Snapshot {
        let counters = lock_or_recover(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = lock_or_recover(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = lock_or_recover(&self.histograms)
            .iter()
            .map(|(k, v)| {
                (k.clone(), {
                    let buckets = v.bucket_counts();
                    HistogramSnapshot {
                        count: buckets.iter().sum(),
                        sum: v.sum(),
                        buckets,
                    }
                })
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    fn slot<M: Default>(mut map: MutexGuard<'_, BTreeMap<String, Arc<M>>>, name: &str) -> Arc<M> {
        Arc::clone(
            map.entry(sanitize_name(name))
                .or_insert_with(|| Arc::new(M::default())),
        )
    }
}

/// Metric names are restricted to `[a-z0-9_.]` so both renderings stay
/// trivially parseable; anything else is folded to `_` instead of
/// erroring, keeping registration infallible on the serve path.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' | '_' | '.' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '_',
        })
        .collect()
}

/// The registry holds plain data; a panic while a map lock was held
/// cannot leave it inconsistent, so lock poisoning is safe to strip.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A live span: records `end - start` microseconds into its histogram on
/// drop.
#[derive(Debug)]
pub struct Span {
    histogram: Arc<Histogram>,
    clock: Arc<dyn Clock>,
    start: u64,
    recorded: bool,
}

impl Span {
    /// Starts a span on an already-resolved histogram handle — the
    /// zero-lock variant of [`Registry::span`] for hot paths that cached
    /// their `Arc<Histogram>` at startup.
    pub fn on(histogram: Arc<Histogram>, clock: Arc<dyn Clock>) -> Self {
        Self::start(histogram, clock)
    }

    fn start(histogram: Arc<Histogram>, clock: Arc<dyn Clock>) -> Self {
        let start = clock.now_micros();
        Self {
            histogram,
            clock,
            start,
            recorded: false,
        }
    }

    /// Ends the span now (instead of at drop) and returns the measured
    /// duration in microseconds.
    pub fn finish(mut self) -> u64 {
        self.record()
    }

    /// Abandons the span: nothing is recorded, now or at drop. Error paths
    /// use this so a latency histogram counts only *completed* operations
    /// and failures stay visible in their own error counters — the
    /// `count + errors == requests` identity the client asserts.
    pub fn cancel(mut self) {
        self.recorded = true;
    }

    fn record(&mut self) -> u64 {
        if self.recorded {
            return 0;
        }
        self.recorded = true;
        let elapsed = self.clock.now_micros().saturating_sub(self.start);
        self.histogram.record(elapsed);
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;

    #[test]
    fn counters_are_shared_by_name() {
        let r = Registry::monotonic();
        let a = r.counter("requests");
        let b = r.counter("requests");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("requests").get(), 3);
    }

    #[test]
    fn names_are_sanitized() {
        let r = Registry::monotonic();
        r.counter("Weird Name!").inc();
        assert_eq!(r.snapshot().counters.get("weird_name_"), Some(&1));
    }

    #[test]
    fn span_records_test_clock_duration() {
        let clock = Arc::new(TestClock::new());
        let r = Registry::new(Arc::clone(&clock) as Arc<dyn Clock>);
        {
            let _span = r.span("phase_micros");
            clock.advance(9);
        }
        let snap = r.snapshot();
        let h = snap.histograms.get("phase_micros").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 9);
        assert_eq!(h.buckets[4], 1, "9 µs lands in le_16");
    }

    #[test]
    fn finish_records_once() {
        let clock = Arc::new(TestClock::new());
        let r = Registry::new(Arc::clone(&clock) as Arc<dyn Clock>);
        let span = r.span("once_micros");
        clock.advance(3);
        assert_eq!(span.finish(), 3);
        let h = r.snapshot().histograms.get("once_micros").cloned().unwrap();
        assert_eq!(h.count, 1, "finish + drop must record exactly once");
    }

    #[test]
    fn cancel_records_nothing() {
        let clock = Arc::new(TestClock::new());
        let r = Registry::new(Arc::clone(&clock) as Arc<dyn Clock>);
        let span = r.span("cancelled_micros");
        clock.advance(12);
        span.cancel();
        let h = r
            .snapshot()
            .histograms
            .get("cancelled_micros")
            .cloned()
            .unwrap();
        assert_eq!(h.count, 0, "a cancelled span must not record at drop");
        assert_eq!(h.sum, 0);
    }

    /// Snapshots taken while writers hammer a histogram must satisfy
    /// `sum-of-buckets == count` every time — the identity the old
    /// three-independent-atomics `record` could break mid-traffic.
    #[test]
    fn mid_traffic_snapshots_keep_count_equal_to_bucket_sum() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let r = Arc::new(Registry::monotonic());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let r = Arc::clone(&r);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let h = r.histogram("latency_micros");
                    let mut v = t as u64;
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        h.record(v % 4096);
                        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for _ in 0..2000 {
            let snap = r.snapshot();
            if let Some(h) = snap.histograms.get("latency_micros") {
                assert_eq!(
                    h.count,
                    h.buckets.iter().sum::<u64>(),
                    "snapshot count must equal its own bucket total"
                );
            }
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        let h = r
            .snapshot()
            .histograms
            .get("latency_micros")
            .cloned()
            .unwrap();
        assert_eq!(h.count, total);
    }

    #[test]
    fn snapshot_is_ordered_and_complete() {
        let r = Registry::monotonic();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        r.gauge("mid").set(-4);
        r.histogram("h").record(5);
        let snap = r.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(snap.gauges.get("mid"), Some(&-4));
        assert_eq!(snap.histograms.get("h").unwrap().count, 1);
    }
}
