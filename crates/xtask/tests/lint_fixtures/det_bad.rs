//! Determinism-zone fixture. Never compiled — scanned by
//! `tests/xtask_lint.rs`, which asserts rule codes and exact lines.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(names: &[&str]) -> usize {
    let mut seen = HashMap::new();
    let started = Instant::now();
    let mut rng = thread_rng();
    let mut fallback = StdRng::from_entropy();
    names.len()
}
