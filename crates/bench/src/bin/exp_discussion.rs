//! The §8 discussion points, measured:
//!
//! * **User-agent randomization** — "a common anti-fingerprinting strategy,
//!   potentially increasing false positives in Browser Polygraph". We give
//!   a slice of legitimate users a randomizer extension and measure the
//!   flag-rate inflation the paper predicts (and why it recommends against
//!   the practice).
//! * **Scale of the database** — "a viable solution would be the adoption
//!   of Stratified Sampling". We train on a 10% stratified sample versus a
//!   10% uniform sample versus the full window and compare accuracy and
//!   rare-browser coverage.
//! * **Clusterer choice** (§6.4.3: "kmeans was chosen due to its
//!   efficiency and straightforward implementation") — we time k-means
//!   against average-linkage agglomerative clustering on an equal sample
//!   and compare accuracy.

use browser_engine::UserAgent;
use polygraph_bench::{header, parse_options, pct, report};
use polygraph_core::{
    stratified_sample, Detector, StratifiedConfig, TrainConfig, TrainedModel, TrainingSet,
};
use polygraph_ml::kmeans::KMeansConfig;
use polygraph_ml::metrics::majority_cluster_accuracy;
use polygraph_ml::{Agglomerative, KMeans, Matrix, Pca, StandardScaler};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use traffic::{generate, GroundTruth, TrafficConfig};

fn main() {
    let opts = parse_options();
    let fs = fingerprint::FeatureSet::table8();
    let window = TrafficConfig::paper_training()
        .with_sessions(opts.sessions)
        .with_seed(opts.seed);
    println!("generating {} sessions ...", opts.sessions);
    let data = generate(&fs, &window);
    let (rows, uas) = data.rows_and_user_agents();
    let training = TrainingSet::from_rows(rows.clone(), uas.clone()).expect("well-formed");
    let model = TrainedModel::fit(fs.clone(), &training, TrainConfig::default()).expect("training");
    let detector = Detector::new(model.clone());

    // ------------------------------------------------------------------
    header("§8 — user-agent randomization inflates false positives");
    // Baseline benign flag rate.
    let benign: Vec<usize> = data
        .sessions
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.truth, GroundTruth::Legitimate { .. }))
        .map(|(i, _)| i)
        .collect();
    let benign_flagged = benign
        .iter()
        .filter(|&&i| detector.assess(&rows[i], uas[i]).expect("assess").flagged)
        .count();
    report(
        "benign flag rate, honest user-agents",
        "(low)",
        &pct(benign_flagged as f64 / benign.len().max(1) as f64),
    );

    // The same benign sessions with a randomizer extension: the claimed
    // user-agent is drawn from the population, the fingerprint is not.
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0x0AD);
    let pool: Vec<UserAgent> = {
        let mut v = uas.clone();
        v.sort();
        v.dedup();
        v
    };
    let mut randomized_flagged = 0usize;
    for &i in &benign {
        let fake = *pool.choose(&mut rng).expect("non-empty pool");
        if detector.assess(&rows[i], fake).expect("assess").flagged {
            randomized_flagged += 1;
        }
    }
    report(
        "benign flag rate, randomized user-agents",
        "(high — the paper advises against it)",
        &pct(randomized_flagged as f64 / benign.len().max(1) as f64),
    );

    // Partial adoption: what a 2% randomizer user base does to the flag
    // volume the analysts must triage.
    let mut partial_flagged = 0usize;
    for &i in &benign {
        let claim = if rng.gen::<f64>() < 0.02 {
            *pool.choose(&mut rng).expect("non-empty pool")
        } else {
            uas[i]
        };
        if detector.assess(&rows[i], claim).expect("assess").flagged {
            partial_flagged += 1;
        }
    }
    report(
        "benign flag rate, 2% of users randomizing",
        "(flag volume multiplies)",
        &pct(partial_flagged as f64 / benign.len().max(1) as f64),
    );

    // ------------------------------------------------------------------
    header("§8 — stratified sampling for oversized training sets");
    report(
        "full window: accuracy / user-agents in table",
        "(reference)",
        &format!(
            "{} / {}",
            pct(model.train_accuracy()),
            model.cluster_table().entries().len()
        ),
    );

    let stratified = stratified_sample(
        &training,
        StratifiedConfig {
            fraction: 0.1,
            min_per_stratum: 150,
            seed: opts.seed,
        },
    )
    .expect("sampling");
    let strat_model = TrainedModel::fit(fs.clone(), &stratified, TrainConfig::default())
        .expect("training on the stratified sample");
    report(
        &format!("10% stratified ({} rows): accuracy / UAs", stratified.len()),
        "(representative)",
        &format!(
            "{} / {}",
            pct(strat_model.train_accuracy()),
            strat_model.cluster_table().entries().len()
        ),
    );

    // Uniform 10% for contrast: rare strata thin out or vanish.
    let mut idx: Vec<usize> = (0..training.len()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(training.len() / 10);
    let keep: std::collections::HashSet<usize> = idx.into_iter().collect();
    let uniform = training.filtered(|i| keep.contains(&i));
    let uniform_model = TrainedModel::fit(fs, &uniform, TrainConfig::default())
        .expect("training on the uniform sample");
    report(
        &format!("10% uniform ({} rows): accuracy / UAs", uniform.len()),
        "(rare browsers thin out)",
        &format!(
            "{} / {}",
            pct(uniform_model.train_accuracy()),
            uniform_model.cluster_table().entries().len()
        ),
    );

    // Rare-stratum coverage: sessions per EdgeHTML release in each set.
    let edgehtml = |set: &TrainingSet| {
        set.user_agents()
            .iter()
            .filter(|u| u.vendor == browser_engine::Vendor::Edge && u.version < 20)
            .count()
    };
    report(
        "EdgeHTML sessions full / stratified / uniform",
        "(stratified preserves them)",
        &format!(
            "{} / {} / {}",
            edgehtml(&training),
            edgehtml(&stratified),
            edgehtml(&uniform)
        ),
    );

    // ------------------------------------------------------------------
    header("§6.4 — clusterer choice: k-means vs agglomerative (equal 2k sample)");
    let sample = stratified_sample(
        &training,
        StratifiedConfig {
            fraction: 2_000.0 / training.len() as f64,
            min_per_stratum: 10,
            seed: opts.seed,
        },
    )
    .expect("sampling");
    let x = Matrix::from_rows(sample.rows()).expect("well-formed");
    let mut scaler = StandardScaler::fit(&x).expect("finite training data");
    scaler.neutralize_columns(
        &fingerprint::FeatureSet::table8().indices_of_kind(fingerprint::FeatureKind::TimeBased),
    );
    let scaled = scaler.transform(&x).expect("fitted");
    let pca = Pca::fit(&scaled, 7).expect("pca");
    let projected = pca.transform(&scaled).expect("projected");

    let t0 = std::time::Instant::now();
    let kmeans =
        KMeans::fit(&projected, KMeansConfig::new(11).with_seed(opts.seed)).expect("kmeans");
    let kmeans_time = t0.elapsed();
    let kmeans_acc = majority_cluster_accuracy(
        sample.user_agents(),
        &kmeans.predict(&projected).expect("predict"),
    )
    .expect("metric")
    .accuracy;

    let t0 = std::time::Instant::now();
    let agg = Agglomerative::fit(&projected, 11).expect("agglomerative");
    let agg_time = t0.elapsed();
    let agg_acc = majority_cluster_accuracy(sample.user_agents(), agg.labels())
        .expect("metric")
        .accuracy;

    report(
        &format!("k-means ({} rows): accuracy / time", sample.len()),
        "(the paper's choice)",
        &format!(
            "{} / {:.0} ms",
            pct(kmeans_acc),
            kmeans_time.as_secs_f64() * 1000.0
        ),
    );
    report(
        &format!("agglomerative ({} rows): accuracy / time", sample.len()),
        "(comparable accuracy, O(n^2) cost)",
        &format!(
            "{} / {:.0} ms",
            pct(agg_acc),
            agg_time.as_secs_f64() * 1000.0
        ),
    );
    println!(
        "  (agglomerative needs the full distance matrix: at the paper's 205k\n\
         \x20\x20sessions that is ~336 GB — k-means' linear memory is the deployment\n\
         \x20\x20argument, not accuracy)"
    );
}
