//! Individual fingerprint probes.

use browser_engine::timebased::PresenceProbe;
use browser_engine::BrowserInstance;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two feature families of the paper (Table 8's "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// `Object.getOwnPropertyNames(X.prototype).length` — selected by
    /// standard deviation across browsers.
    DeviationBased,
    /// `X.prototype.hasOwnProperty('y')` — selected because the property
    /// appears/disappears over browser history.
    TimeBased,
}

impl fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FeatureKind::DeviationBased => "deviation-based",
            FeatureKind::TimeBased => "time-based",
        })
    }
}

/// One executable probe. Every probe yields a small non-negative integer:
/// a property count, or 0/1 for a presence bit — the only data the
/// collection script ever ships (Appendix A: "the fingerprints we
/// collected are only integer outputs").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Probe {
    /// Count the own properties of a prototype.
    Count {
        /// Interface name, e.g. `"Element"`.
        prototype: String,
    },
    /// Test a property's presence on a prototype.
    Presence(PresenceProbe),
}

impl Probe {
    /// A count probe for `prototype`.
    pub fn count(prototype: &str) -> Self {
        Probe::Count {
            prototype: prototype.into(),
        }
    }

    /// A presence probe.
    pub fn presence(prototype: &str, property: &str) -> Self {
        Probe::Presence(PresenceProbe::new(prototype, property))
    }

    /// Which feature family the probe belongs to.
    pub fn kind(&self) -> FeatureKind {
        match self {
            Probe::Count { .. } => FeatureKind::DeviationBased,
            Probe::Presence(_) => FeatureKind::TimeBased,
        }
    }

    /// The JavaScript expression this probe models (the paper's feature
    /// naming convention, e.g. Table 7/8).
    pub fn expression(&self) -> String {
        match self {
            Probe::Count { prototype } => {
                format!("Object.getOwnPropertyNames({prototype}.prototype).length")
            }
            Probe::Presence(p) => p.expression(),
        }
    }

    /// Executes the probe against a browser instance.
    pub fn execute(&self, browser: &BrowserInstance) -> u32 {
        match self {
            Probe::Count { prototype } => browser.own_property_count(prototype),
            Probe::Presence(p) => browser.has_own_property(p) as u32,
        }
    }
}

impl fmt::Display for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.expression())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::{UserAgent, Vendor};

    #[test]
    fn count_probe_executes() {
        let b = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 110));
        let p = Probe::count("Element");
        let v = p.execute(&b);
        assert!(
            v.abs_diff(330) <= 2,
            "Element count near the authored 330, got {v}"
        );
        assert_eq!(p.kind(), FeatureKind::DeviationBased);
    }

    #[test]
    fn presence_probe_executes_as_bit() {
        let b = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 110));
        let p = Probe::presence("Navigator", "deviceMemory");
        assert_eq!(p.execute(&b), 1);
        let f = BrowserInstance::genuine(UserAgent::new(Vendor::Firefox, 110));
        assert_eq!(p.execute(&f), 0);
        assert_eq!(p.kind(), FeatureKind::TimeBased);
    }

    #[test]
    fn expressions_match_paper_convention() {
        assert_eq!(
            Probe::count("Element").expression(),
            "Object.getOwnPropertyNames(Element.prototype).length"
        );
        assert_eq!(
            Probe::presence("Screen", "orientation").expression(),
            "Screen.prototype.hasOwnProperty('orientation')"
        );
    }

    #[test]
    fn probes_are_hashable_and_serializable() {
        use std::collections::HashSet;
        let set: HashSet<Probe> = [
            Probe::count("Element"),
            Probe::count("Element"),
            Probe::count("Range"),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 2);
        let json = serde_json::to_string(&Probe::count("Element")).unwrap();
        let back: Probe = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Probe::count("Element"));
    }
}
