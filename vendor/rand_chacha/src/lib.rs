//! Offline vendored ChaCha8 random number generator.
//!
//! A genuine ChaCha8 keystream generator (Bernstein 2008) behind the
//! `rand_chacha::ChaCha8Rng` name, built because the build environment
//! cannot fetch crates.io. The full 32-byte seed keys the cipher; the
//! keystream is emitted as little-endian `u32` words in block order, so
//! every draw is a pure function of (seed, position).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
/// "expand 32-byte k" — the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha8 keystream RNG with a 256-bit seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Stream/nonce words (state words 14..16).
    stream: [u32; 2],
    /// The current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream[0];
        state[15] = self.stream[1];

        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&state)) {
            *out = w.wrapping_add(s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Selects an independent keystream ("stream id") under the same key —
    /// the tool for deterministic RNG splitting across workers.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = [stream as u32, (stream >> 32) as u32];
        // Restart the stream's keystream from its origin.
        self.counter = 0;
        self.index = 16;
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        u64::from(self.stream[0]) | (u64::from(self.stream[1]) << 32)
    }
}

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            stream: [0, 0],
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(lo) | (u64::from(hi) << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 test vector structure adapted to ChaCha8: with the
    /// all-zero key and nonce the first block must match the published
    /// ChaCha8 keystream.
    #[test]
    fn chacha8_zero_key_first_word_is_stable() {
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        // Known first keystream words of ChaCha8 with zero key/nonce
        // (e.g. from the eSTREAM reference implementation):
        // 3e00ef2f895f40d67f5bb8e81f09a5a1 2c840ec3ce9a7f3b181be188ef711a1e
        let expect_first = u32::from_le_bytes([0x3e, 0x00, 0xef, 0x2f]);
        let got = rng.next_u32();
        assert_eq!(
            got, expect_first,
            "got {got:08x}, want {expect_first:08x} — ChaCha8 core mismatch"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        a.set_stream(1);
        b.set_stream(2);
        let first_a: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let first_b: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(first_a, first_b, "streams must differ");
        b.set_stream(1);
        let again: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_eq!(first_a, again, "same stream restarts identically");
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut bytes = [0u8; 12];
        a.fill_bytes(&mut bytes);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        let w2 = b.next_u32().to_le_bytes();
        assert_eq!(&bytes[..4], &w0);
        assert_eq!(&bytes[4..8], &w1);
        assert_eq!(&bytes[8..12], &w2);
    }

    #[test]
    fn clone_continues_the_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
