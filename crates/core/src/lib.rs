//! # polygraph-core
//!
//! The Browser Polygraph pipeline (the paper's primary contribution):
//!
//! * [`dataset`] — training-set container pairing fingerprint vectors with
//!   the user-agents that produced them;
//! * [`mod@preprocess`] — the §6.3 data pre-processing funnel: drop
//!   single-valued candidates, drop configuration-sensitive candidates,
//!   rank the survivors by deviation, and land on the 28-feature set of
//!   Table 8;
//! * [`train`] — the §6.4 training pipeline: StandardScaler →
//!   Isolation-Forest outlier removal → PCA(7) → k-means(11), plus the
//!   semi-supervised cluster/user-agent table of Table 3;
//! * [`risk`] — Algorithm 1: the `risk_factor` of a session given its
//!   claimed user-agent and predicted cluster;
//! * [`detect`] — the §6.5 online fraud-detection path;
//! * [`drift`] — the §6.6 drift detector that decides when retraining is
//!   needed, and [`drift_stream`] — its streaming counterpart over
//!   per-release counters;
//! * [`sampling`] — stratified sampling for oversized training sets
//!   (§8, "Scale of the database");
//! * [`sweeps`] — the Appendix-4 sensitivity analyses (Tables 10–12).
//!
//! Everything heavy happens offline ([`train`]); the online path
//! ([`detect::Detector::assess`]) is a scale + project + nearest-centroid
//! lookup — the property that lets the system answer within FinOrg's
//! latency budget (§3, §7.5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod detect;
pub mod drift;
pub mod drift_stream;
pub mod error;
pub mod preprocess;
pub mod risk;
pub mod sampling;
pub mod sweeps;
pub mod train;

pub use dataset::TrainingSet;
pub use detect::{Assessment, Detector};
pub use drift::{DriftDecision, DriftDetector, DriftObservation};
pub use drift_stream::{DriftAccumulator, DriftStream};
pub use error::PolygraphError;
pub use preprocess::{preprocess, PreprocessConfig, PreprocessReport};
pub use risk::{risk_factor, MAX_RISK};
pub use sampling::{stratified_sample, ReservoirWindow, StratifiedConfig};
pub use train::{fit_metric_names, ClusterTable, TrainConfig, TrainedModel};
