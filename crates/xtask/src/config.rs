//! Lint configuration: rule zones, scan excludes, and the `lint.toml`
//! allowlist of audited exceptions.
//!
//! The zone map mirrors the invariants PR 1 established dynamically:
//!
//! * **determinism zone** — code on the retraining path must produce
//!   bit-identical models run-to-run (drift detection compares a
//!   browser's *re-assigned* cluster against its old one, so hidden
//!   nondeterminism silently disables retraining triggers);
//! * **panic-safety zone** — code that parses network input must answer
//!   `Malformed`, never unwind.
//!
//! `lint.toml` is parsed with a deliberately small hand-rolled reader (the
//! workspace is vendored-offline; there is no `toml` crate). It supports
//! exactly the shapes the file uses: `[section]` tables, `[[allow]]`
//! array-of-tables, string / integer values, and (multi-line) string
//! arrays.

/// One audited exception: suppresses diagnostics of `rule` in `file`
/// (optionally narrowed to a single line). `reason` is mandatory — an
/// allowlist entry without a justification fails the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub file: String,
    pub line: Option<u32>,
    pub reason: String,
}

/// Full configuration of a lint run.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path prefixes (relative to the workspace root, `/`-separated) whose
    /// files must obey the determinism rules (POLY-D*).
    pub determinism_zone: Vec<String>,
    /// Path prefixes whose files must obey the key-determinism rule
    /// (POLY-D004): the verdict cache and the service code that keys it
    /// must never hash with a per-process-seeded std hasher.
    pub key_determinism_zone: Vec<String>,
    /// Path prefixes whose files must obey the panic-safety rules
    /// (POLY-P*).
    pub panic_zone: Vec<String>,
    /// Path prefixes whose files must obey the concurrency rules
    /// (POLY-L*): lock-order cycles, guards held across blocking calls,
    /// and unaudited `Ordering::Relaxed`.
    pub concurrency_zone: Vec<String>,
    /// Path prefixes excluded from the scan entirely.
    pub exclude: Vec<String>,
    /// Audited exceptions.
    pub allow: Vec<AllowEntry>,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            determinism_zone: vec![
                "crates/ml/src/".into(),
                "crates/core/src/train.rs".into(),
                "crates/core/src/drift.rs".into(),
                "crates/core/src/drift_stream.rs".into(),
                "crates/browser-engine/src/".into(),
                "crates/traffic/src/generate.rs".into(),
                // The metrics layer must render byte-identical snapshots
                // under an injected clock (its one Instant::now lives in
                // MonotonicClock, allowlisted in lint.toml).
                "crates/obs/src/".into(),
                // The readiness reactor paces itself by scan counts and
                // takes deadlines from the injected server Clock.
                "crates/service/src/reactor.rs".into(),
            ],
            key_determinism_zone: vec!["crates/service/src/".into(), "crates/cache/src/".into()],
            panic_zone: vec![
                "crates/service/src/server.rs".into(),
                "crates/service/src/framing.rs".into(),
                "crates/service/src/reactor.rs".into(),
                "crates/service/src/proto.rs".into(),
                "crates/service/src/client.rs".into(),
                "crates/fingerprint/src/wire.rs".into(),
            ],
            concurrency_zone: vec![
                "crates/cache/src/".into(),
                "crates/service/src/".into(),
                "crates/ml/src/pool.rs".into(),
                // The quantized kernel runs inside the server's detector
                // read guard and obeys the same discipline.
                "crates/ml/src/quant.rs".into(),
            ],
            exclude: vec![
                "target/".into(),
                "vendor/".into(),
                ".git/".into(),
                // The linter's own bad-code fixtures.
                "crates/xtask/tests/lint_fixtures/".into(),
            ],
            allow: Vec::new(),
        }
    }
}

impl LintConfig {
    /// Applies a parsed `lint.toml` on top of this configuration.
    /// `[zones]`/`[scan]` keys replace the defaults when present;
    /// `[[allow]]` entries accumulate.
    pub fn apply_toml(&mut self, text: &str) -> Result<(), String> {
        let doc = parse_toml_subset(text)?;
        for (section, key, value) in &doc {
            match (section.as_str(), key.as_str(), value) {
                ("zones", "determinism", Value::Array(a)) => {
                    self.determinism_zone = a.clone();
                }
                ("zones", "key_determinism", Value::Array(a)) => {
                    self.key_determinism_zone = a.clone();
                }
                ("zones", "panic_safety", Value::Array(a)) => {
                    self.panic_zone = a.clone();
                }
                ("zones", "concurrency", Value::Array(a)) => {
                    self.concurrency_zone = a.clone();
                }
                ("scan", "exclude", Value::Array(a)) => {
                    self.exclude = a.clone();
                }
                ("zones" | "scan", k, _) => {
                    return Err(format!("lint.toml: unsupported key `{k}` in [{section}]"));
                }
                _ => {}
            }
        }
        self.allow.extend(collect_allow_entries(&doc)?);
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Array(Vec<String>),
}

/// `(section, key, value)` triples in document order. `[[allow]]` tables
/// get numbered sections `allow#0`, `allow#1`, … so entries stay distinct.
type Doc = Vec<(String, String, Value)>;

fn collect_allow_entries(doc: &Doc) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<(String, AllowEntry)> = None;
    for (section, key, value) in doc {
        if !section.starts_with("allow#") {
            continue;
        }
        if current.as_ref().map(|(s, _)| s.as_str()) != Some(section.as_str()) {
            if let Some((_, e)) = current.take() {
                entries.push(validate_allow(e)?);
            }
            current = Some((
                section.clone(),
                AllowEntry {
                    rule: String::new(),
                    file: String::new(),
                    line: None,
                    reason: String::new(),
                },
            ));
        }
        let Some((_, entry)) = current.as_mut() else {
            continue;
        };
        match (key.as_str(), value) {
            ("rule", Value::Str(s)) => entry.rule = s.clone(),
            ("file", Value::Str(s)) => entry.file = s.clone(),
            ("reason", Value::Str(s)) => entry.reason = s.clone(),
            ("line", Value::Int(n)) => {
                entry.line =
                    Some(u32::try_from(*n).map_err(|_| format!("lint.toml: bad line number {n}"))?);
            }
            (k, _) => {
                return Err(format!("lint.toml: unsupported key `{k}` in [[allow]]"));
            }
        }
    }
    if let Some((_, e)) = current.take() {
        entries.push(validate_allow(e)?);
    }
    Ok(entries)
}

fn validate_allow(e: AllowEntry) -> Result<AllowEntry, String> {
    if e.rule.is_empty() || e.file.is_empty() {
        return Err("lint.toml: [[allow]] entries need both `rule` and `file`".into());
    }
    if e.reason.trim().is_empty() {
        return Err(format!(
            "lint.toml: [[allow]] entry for {} in {} has no `reason` — every audited \
             exception must be justified",
            e.rule, e.file
        ));
    }
    Ok(e)
}

/// Parses the TOML subset `lint.toml` uses. Returns `(section, key,
/// value)` triples in document order.
fn parse_toml_subset(text: &str) -> Result<Doc, String> {
    let mut doc = Doc::new();
    let mut section = String::new();
    let mut allow_count = 0usize;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            if name.trim() != "allow" {
                return Err(format!(
                    "lint.toml:{}: unsupported array-of-tables [[{}]]",
                    lineno + 1,
                    name.trim()
                ));
            }
            section = format!("allow#{allow_count}");
            allow_count += 1;
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        let Some((key, mut rest)) = split_key_value(&line) else {
            return Err(format!("lint.toml:{}: expected `key = value`", lineno + 1));
        };
        // Multi-line arrays: keep consuming lines until the closing `]`.
        if rest.starts_with('[') && !rest.ends_with(']') {
            let mut acc = rest;
            for (_, cont) in lines.by_ref() {
                let cont = strip_comment(cont).trim().to_string();
                acc.push(' ');
                acc.push_str(&cont);
                if cont.ends_with(']') {
                    break;
                }
            }
            rest = acc;
        }
        let value = parse_value(&rest).map_err(|e| format!("lint.toml:{}: {e}", lineno + 1))?;
        doc.push((section.clone(), key, value));
    }
    Ok(doc)
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '#' => break,
            '"' => {
                in_str = true;
                out.push(c);
            }
            _ => out.push(c),
        }
    }
    out
}

fn split_key_value(line: &str) -> Option<(String, String)> {
    let eq = line.find('=')?;
    let (key, rest) = line.split_at(eq);
    let rest = rest.strip_prefix('=').unwrap_or(rest);
    Some((key.trim().to_string(), rest.trim().to_string()))
}

fn parse_value(text: &str) -> Result<Value, String> {
    let text = text.trim();
    if let Some(inner) = text.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_top_level_commas(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                _ => return Err("arrays may only hold strings".into()),
            }
        }
        return Ok(Value::Array(items));
    }
    if let Some(inner) = text.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        return Ok(Value::Str(unescape(inner)));
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("cannot parse value `{text}`"))
}

fn split_top_level_commas(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_str {
            current.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            ',' => {
                parts.push(std::mem::take(&mut current));
            }
            '"' => {
                in_str = true;
                current.push(c);
            }
            _ => current.push(c),
        }
    }
    parts.push(current);
    parts
}

fn unescape(s: &str) -> String {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_the_paper_zones() {
        let c = LintConfig::default();
        assert!(c.determinism_zone.iter().any(|p| p.contains("ml")));
        assert!(c.panic_zone.iter().any(|p| p.contains("wire.rs")));
        assert!(c.exclude.iter().any(|p| p.contains("vendor")));
    }

    #[test]
    fn toml_allow_entries_parse() {
        let mut c = LintConfig::default();
        c.apply_toml(
            r#"
# comment
[scan]
exclude = [
    "target/",   # trailing comment
    "vendor/",
]

[[allow]]
rule = "POLY-P001"
file = "crates/foo/src/bar.rs"
line = 12
reason = "audited: length checked two lines above"

[[allow]]
rule = "POLY-D001"
file = "crates/baz/src/qux.rs"
reason = "scratch map is drained in sorted order"
"#,
        )
        .unwrap();
        assert_eq!(
            c.exclude,
            vec!["target/".to_string(), "vendor/".to_string()]
        );
        assert_eq!(c.allow.len(), 2);
        assert_eq!(c.allow[0].rule, "POLY-P001");
        assert_eq!(c.allow[0].line, Some(12));
        assert_eq!(c.allow[1].line, None);
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let mut c = LintConfig::default();
        let err = c
            .apply_toml("[[allow]]\nrule = \"POLY-P001\"\nfile = \"x.rs\"\n")
            .unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn zones_can_be_overridden() {
        let mut c = LintConfig::default();
        c.apply_toml(
            "[zones]\ndeterminism = [\"det_\"]\nkey_determinism = [\"keys_\"]\n\
             panic_safety = [\"panic_\"]\nconcurrency = [\"lock_\"]\n",
        )
        .unwrap();
        assert_eq!(c.determinism_zone, vec!["det_".to_string()]);
        assert_eq!(c.key_determinism_zone, vec!["keys_".to_string()]);
        assert_eq!(c.panic_zone, vec!["panic_".to_string()]);
        assert_eq!(c.concurrency_zone, vec!["lock_".to_string()]);
    }

    #[test]
    fn default_concurrency_zone_covers_cache_service_and_pool() {
        let c = LintConfig::default();
        assert!(c.concurrency_zone.iter().any(|p| p == "crates/cache/src/"));
        assert!(c
            .concurrency_zone
            .iter()
            .any(|p| p == "crates/service/src/"));
        assert!(c
            .concurrency_zone
            .iter()
            .any(|p| p == "crates/ml/src/pool.rs"));
    }

    #[test]
    fn default_key_determinism_zone_covers_cache_and_service() {
        let c = LintConfig::default();
        assert!(c
            .key_determinism_zone
            .iter()
            .any(|p| p == "crates/cache/src/"));
        assert!(c
            .key_determinism_zone
            .iter()
            .any(|p| p == "crates/service/src/"));
    }
}
