//! Offline vendored serde facade.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the slice of serde that browser-polygraph actually exercises: a
//! tree-model [`Value`] (shared with the vendored `serde_json`), a pair of
//! tree-model traits ([`Serialize`] / [`Deserialize`]) and the derive
//! macros re-exported from the vendored `serde_derive`.
//!
//! Design notes:
//! - The traits are *tree-model* rather than visitor-based: `to_value` /
//!   `from_value` against [`Value`]. No code in this workspace implements
//!   the serde traits by hand or uses them as public generic bounds, so the
//!   simpler shape is observationally equivalent.
//! - [`Map`] is a `BTreeMap`, making every serialisation deterministic —
//!   a property the workspace's reproducibility tests rely on.
//! - Maps with non-string keys serialise as sorted `[key, value]` pair
//!   arrays (real serde_json rejects them; here they only need to
//!   round-trip through this same crate).

#![forbid(unsafe_code)]

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON object: deterministic (sorted) key order.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: integer-preserving, like serde_json's.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// The value as `f64` (always succeeds; integers cast).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match *self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        })
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I64(v) => u64::try_from(v).ok(),
            Number::U64(v) => Some(v),
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (I64(a), I64(b)) => a == b,
            (U64(a), U64(b)) => a == b,
            (I64(a), U64(b)) | (U64(b), I64(a)) => a >= 0 && a as u64 == b,
            (F64(a), F64(b)) => a == b,
            (F64(f), I64(i)) | (I64(i), F64(f)) => f == i as f64,
            (F64(f), U64(u)) | (U64(u), F64(f)) => f == u as f64,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            // Rust's shortest-round-trip Display keeps `from_str` lossless.
            Number::F64(v) => write!(f, "{v}"),
        }
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key-sorted object.
    Object(Map),
}

impl Value {
    /// Borrow as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as `bool` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Numeric value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Numeric value as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Borrow the array items.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the object map.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// serde_json semantics: missing keys and non-objects index to `Null`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// A total order over values, used to sort non-string map keys so their
/// serialisation is deterministic. Cross-type order is by variant rank.
pub fn cmp_values(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Number(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Number(x), Value::Number(y)) => {
            let (fx, fy) = (x.as_f64().unwrap_or(0.0), y.as_f64().unwrap_or(0.0));
            fx.total_cmp(&fy)
        }
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => {
            for (i, j) in x.iter().zip(y.iter()) {
                let ord = cmp_values(i, j);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Object(x), Value::Object(y)) => {
            for ((kx, vx), (ky, vy)) in x.iter().zip(y.iter()) {
                let ord = kx.cmp(ky).then_with(|| cmp_values(vx, vy));
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

/// A deserialisation failure: a path-less message, enough for the
/// workspace's error handling (everything bubbles into `io::Error`).
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// A new error carrying `msg`.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Tree-model serialisation: render `self` as a [`Value`].
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Tree-model deserialisation: rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called for a struct field absent from its object. `Option` fields
    /// default to `None`; everything else errors.
    fn missing_field(name: &str) -> Result<Self, DeError> {
        Err(DeError::new(format!("missing field `{name}`")))
    }
}

/// Fetch and deserialise a struct field (used by derived code).
pub fn field<T: Deserialize>(m: &Map, name: &str) -> Result<T, DeError> {
    match m.get(name) {
        Some(v) => T::from_value(v),
        None => T::missing_field(name),
    }
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| {
                        DeError::new(format!(
                            "expected {} in range, got {v:?}",
                            stringify!($t)
                        ))
                    })
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| {
                        DeError::new(format!(
                            "expected {} in range, got {v:?}",
                            stringify!($t)
                        ))
                    })
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Number(Number::F64(f))
                } else if f.is_nan() {
                    Value::String("NaN".into())
                } else if f > 0.0 {
                    Value::String("inf".into())
                } else {
                    Value::String("-inf".into())
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => Ok(n.as_f64().unwrap_or(0.0) as $t),
                    Value::String(s) => match s.as_str() {
                        "NaN" => Ok(<$t>::NAN),
                        "inf" => Ok(<$t>::INFINITY),
                        "-inf" => Ok(<$t>::NEG_INFINITY),
                        _ => Err(DeError::new(format!("expected float, got {s:?}"))),
                    },
                    _ => Err(DeError::new(format!("expected float, got {v:?}"))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

// ----------------------------------------------------------- scalar misc

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::new(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::new(format!("expected char, got {v:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!("expected 1-char string, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of {N}, got {got}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| DeError::new(format!("expected tuple array, got {v:?}")))?;
                let want = [$($idx),+].len();
                if arr.len() != want {
                    return Err(DeError::new(format!(
                        "expected tuple of {want}, got {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps serialise as sorted `[key, value]` pair arrays so non-string keys
/// (e.g. `HashMap<UserAgent, _>`) survive; sorting keeps it deterministic.
impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: Serialize + Eq + Hash,
    V: Serialize,
    S: BuildHasher,
{
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| cmp_values(&a.0, &b.0));
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected pair array, got {v:?}")))?;
        let mut out = HashMap::with_capacity_and_hasher(arr.len(), S::default());
        for pair in arr {
            let kv = <(K, V)>::from_value(pair)?;
            out.insert(kv.0, kv.1);
        }
        Ok(out)
    }
}

impl<K, V> Serialize for BTreeMap<K, V>
where
    K: Serialize + Ord,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| cmp_values(&a.0, &b.0));
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected pair array, got {v:?}")))?;
        let mut out = BTreeMap::new();
        for pair in arr {
            let kv = <(K, V)>::from_value(pair)?;
            out.insert(kv.0, kv.1);
        }
        Ok(out)
    }
}

// ------------------------------------------------- From impls for json!

macro_rules! impl_value_from_int {
    ($variant:ident : $($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::$variant(v as _))
            }
        }
    )*};
}
impl_value_from_int!(I64: i8, i16, i32, i64, isize);
impl_value_from_int!(U64: u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        // json!(non-finite float) is null, matching serde_json.
        if v.is_finite() {
            Value::Number(Number::F64(v))
        } else {
            Value::Null
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_cross_type_equality() {
        assert_eq!(Number::I64(112), Number::U64(112));
        assert_eq!(Number::F64(2.0), Number::I64(2));
        assert_ne!(Number::I64(-1), Number::U64(u64::MAX));
    }

    #[test]
    fn index_missing_is_null() {
        let mut m = Map::new();
        m.insert("a".into(), Value::Bool(true));
        let v = Value::Object(m);
        assert_eq!(v["a"], Value::Bool(true));
        assert!(v["nope"].is_null());
        assert!(v["a"]["deeper"].is_null());
    }

    #[test]
    fn option_round_trip_and_missing() {
        let some = Some(3usize).to_value();
        assert_eq!(Option::<usize>::from_value(&some).unwrap(), Some(3));
        assert_eq!(Option::<usize>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<usize>::missing_field("x").unwrap(), None);
        assert!(usize::missing_field("x").is_err());
    }

    #[test]
    fn hashmap_round_trip_with_struct_like_keys() {
        let mut m: HashMap<(u32, u32), usize> = HashMap::new();
        m.insert((3, 4), 7);
        m.insert((1, 2), 9);
        let v = m.to_value();
        let back: HashMap<(u32, u32), usize> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn float_specials_round_trip() {
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1.5e-300] {
            let v = f.to_value();
            let back = f64::from_value(&v).unwrap();
            assert!(back == f || (back.is_nan() && f.is_nan()));
        }
    }

    #[test]
    fn array_round_trip() {
        let a: [u8; 16] = [9; 16];
        let back: [u8; 16] = Deserialize::from_value(&a.to_value()).unwrap();
        assert_eq!(back, a);
    }
}
