//! The risk-assessment TCP service.
//!
//! Each connection streams length-prefixed fingerprint submission frames
//! (the same format the collection service accepts) and receives one
//! fixed-size [`Verdict`] per frame. The serving detector sits behind an
//! `Arc<RwLock<…>>` so the [`crate::orchestrator`] can swap in a
//! retrained model without interrupting traffic — the paper's "ongoing
//! system enhancements … minimises delays during user interaction"
//! property (§6.5).

use crate::proto::{Verdict, VerdictStatus};
use browser_engine::UserAgent;
use fingerprint::{decode_submission, MAX_SUBMISSION_BYTES};
use parking_lot::RwLock;
use polygraph_core::Detector;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Counters of a running risk server.
#[derive(Debug, Default)]
pub struct RiskServerStats {
    /// Submissions assessed.
    pub assessed: AtomicUsize,
    /// Assessments that flagged the session.
    pub flagged: AtomicUsize,
    /// Malformed frames answered with an error verdict.
    pub malformed: AtomicUsize,
    /// Detector swaps performed.
    pub swaps: AtomicUsize,
}

/// Handle to a running risk server.
pub struct RiskServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    detector: Arc<RwLock<Detector>>,
    stats: Arc<RiskServerStats>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl RiskServerHandle {
    /// The listening address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared counters.
    pub fn stats(&self) -> &RiskServerStats {
        &self.stats
    }

    /// A handle to the serving detector slot (for the orchestrator).
    pub fn detector_slot(&self) -> Arc<RwLock<Detector>> {
        Arc::clone(&self.detector)
    }

    /// Atomically replaces the serving detector. In-flight assessments
    /// finish on the old model; the next frame uses the new one.
    pub fn swap_detector(&self, detector: Detector) {
        *self.detector.write() = detector;
        self.stats.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Stops accepting and joins the acceptor thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Starts a risk server on `addr` (use `127.0.0.1:0` for an ephemeral
/// port) serving `detector`.
pub fn start_risk_server(addr: &str, detector: Detector) -> io::Result<RiskServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;

    let stop = Arc::new(AtomicBool::new(false));
    let detector = Arc::new(RwLock::new(detector));
    let stats = Arc::new(RiskServerStats::default());

    let acceptor = {
        let stop = Arc::clone(&stop);
        let detector = Arc::clone(&detector);
        let stats = Arc::clone(&stats);
        thread::spawn(move || {
            let mut workers = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let detector = Arc::clone(&detector);
                        let stats = Arc::clone(&stats);
                        workers.push(thread::spawn(move || {
                            let _ = serve_connection(stream, &detector, &stats);
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        })
    };

    Ok(RiskServerHandle {
        addr: local,
        stop,
        detector,
        stats,
        acceptor: Some(acceptor),
    })
}

fn serve_connection(
    mut stream: TcpStream,
    detector: &RwLock<Detector>,
    stats: &RiskServerStats,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_nodelay(true)?;
    loop {
        let mut len_buf = [0u8; 2];
        match stream.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        }
        let len = u16::from_le_bytes(len_buf) as usize;
        if len > MAX_SUBMISSION_BYTES {
            stats.malformed.fetch_add(1, Ordering::Relaxed);
            let _ = stream.write_all(&Verdict::error(VerdictStatus::Malformed).encode());
            return Ok(()); // cannot resynchronise past an unread body
        }
        let mut frame = vec![0u8; len];
        stream.read_exact(&mut frame)?;

        let verdict = assess_frame(&frame, detector, stats);
        stream.write_all(&verdict.encode())?;
    }
}

/// Decodes a submission frame and assesses it against the serving model.
/// Shared by the TCP path and in-process callers (the CLI).
pub fn assess_frame(frame: &[u8], detector: &RwLock<Detector>, stats: &RiskServerStats) -> Verdict {
    let Ok(submission) = decode_submission(frame) else {
        stats.malformed.fetch_add(1, Ordering::Relaxed);
        return Verdict::error(VerdictStatus::Malformed);
    };
    let Ok(claimed) = submission.user_agent.parse::<UserAgent>() else {
        stats.malformed.fetch_add(1, Ordering::Relaxed);
        return Verdict::error(VerdictStatus::Malformed);
    };
    let values: Vec<f64> = submission.values.iter().map(|&v| v as f64).collect();
    let guard = detector.read();
    match guard.assess(&values, claimed) {
        Ok(a) => {
            stats.assessed.fetch_add(1, Ordering::Relaxed);
            if a.flagged {
                stats.flagged.fetch_add(1, Ordering::Relaxed);
            }
            Verdict {
                status: VerdictStatus::Assessed,
                flagged: a.flagged,
                risk_factor: a.risk_factor.min(u8::MAX as u32) as u8,
                predicted_cluster: a.predicted_cluster.min(u8::MAX as usize) as u8,
                expected_cluster: a.expected_cluster.map(|c| c.min(u8::MAX as usize) as u8),
            }
        }
        Err(_) => {
            stats.malformed.fetch_add(1, Ordering::Relaxed);
            Verdict::error(VerdictStatus::SchemaMismatch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::Vendor;
    use fingerprint::{encode_submission, FeatureSet, Submission};
    use polygraph_core::{TrainConfig, TrainedModel, TrainingSet};

    fn tiny_detector() -> Detector {
        let mut set = TrainingSet::new(2);
        for (base, ua) in [
            (0.0, UserAgent::new(Vendor::Chrome, 60)),
            (10.0, UserAgent::new(Vendor::Chrome, 100)),
            (20.0, UserAgent::new(Vendor::Firefox, 100)),
        ] {
            for j in 0..40 {
                set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                    .unwrap();
            }
        }
        let fs = FeatureSet::table8().subset(&[0, 1]);
        let config = TrainConfig {
            k: 3,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        Detector::new(TrainedModel::fit(fs, &set, config).unwrap())
    }

    fn frame_for(values: Vec<u32>, ua: UserAgent) -> Vec<u8> {
        let sub = Submission {
            session_id: [9u8; 16],
            user_agent: ua.to_ua_string(),
            values,
        };
        encode_submission(&sub).unwrap().to_vec()
    }

    #[test]
    fn assess_frame_honest_and_lying() {
        let detector = RwLock::new(tiny_detector());
        let stats = RiskServerStats::default();

        let honest = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100));
        let v = assess_frame(&honest, &detector, &stats);
        assert_eq!(v.status, VerdictStatus::Assessed);
        assert!(!v.flagged);

        let lying = frame_for(vec![20, 20], UserAgent::new(Vendor::Chrome, 100));
        let v = assess_frame(&lying, &detector, &stats);
        assert!(v.flagged);
        assert_eq!(v.risk_factor, 20);
        assert_eq!(stats.assessed.load(Ordering::Relaxed), 2);
        assert_eq!(stats.flagged.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn assess_frame_rejects_garbage_and_bad_ua() {
        let detector = RwLock::new(tiny_detector());
        let stats = RiskServerStats::default();
        let v = assess_frame(&[1, 2, 3], &detector, &stats);
        assert_eq!(v.status, VerdictStatus::Malformed);

        let sub = Submission {
            session_id: [0u8; 16],
            user_agent: "curl/8.0".into(),
            values: vec![1, 2],
        };
        let frame = encode_submission(&sub).unwrap();
        let v = assess_frame(&frame, &detector, &stats);
        assert_eq!(v.status, VerdictStatus::Malformed);
        assert_eq!(stats.malformed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn assess_frame_schema_mismatch() {
        let detector = RwLock::new(tiny_detector());
        let stats = RiskServerStats::default();
        let frame = frame_for(vec![1, 2, 3, 4], UserAgent::new(Vendor::Chrome, 100));
        let v = assess_frame(&frame, &detector, &stats);
        assert_eq!(v.status, VerdictStatus::SchemaMismatch);
    }

    #[test]
    fn server_round_trip_over_tcp() {
        let server = start_risk_server("127.0.0.1:0", tiny_detector()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();

        let frame = frame_for(vec![10, 10], UserAgent::new(Vendor::Chrome, 100));
        stream
            .write_all(&(frame.len() as u16).to_le_bytes())
            .unwrap();
        stream.write_all(&frame).unwrap();
        let mut buf = [0u8; crate::proto::VERDICT_LEN];
        stream.read_exact(&mut buf).unwrap();
        let v = Verdict::decode(&buf).unwrap();
        assert_eq!(v.status, VerdictStatus::Assessed);
        assert!(!v.flagged);
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn detector_swap_changes_verdicts_live() {
        // Model A knows Chrome 60 at (0,0). Model B is trained with
        // Chrome 60 at (10,10) instead — after the swap the same frame
        // flips from honest to flagged.
        let detector_a = tiny_detector();
        let server = start_risk_server("127.0.0.1:0", detector_a).unwrap();

        let mut set = TrainingSet::new(2);
        for (base, ua) in [
            (10.0, UserAgent::new(Vendor::Chrome, 60)),
            (0.0, UserAgent::new(Vendor::Firefox, 60)),
            (20.0, UserAgent::new(Vendor::Firefox, 100)),
        ] {
            for j in 0..40 {
                set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                    .unwrap();
            }
        }
        let fs = FeatureSet::table8().subset(&[0, 1]);
        let config = TrainConfig {
            k: 3,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        let detector_b = Detector::new(TrainedModel::fit(fs, &set, config).unwrap());

        let frame = frame_for(vec![0, 0], UserAgent::new(Vendor::Chrome, 60));
        let ask = |addr| {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_nodelay(true).unwrap();
            stream
                .write_all(&(frame.len() as u16).to_le_bytes())
                .unwrap();
            stream.write_all(&frame).unwrap();
            let mut buf = [0u8; crate::proto::VERDICT_LEN];
            stream.read_exact(&mut buf).unwrap();
            Verdict::decode(&buf).unwrap()
        };

        assert!(
            !ask(server.local_addr()).flagged,
            "model A: (0,0) is Chrome 60"
        );
        server.swap_detector(detector_b);
        assert!(
            ask(server.local_addr()).flagged,
            "model B: (0,0) is Firefox territory"
        );
        assert_eq!(server.stats().swaps.load(Ordering::Relaxed), 1);
        server.shutdown();
    }
}
