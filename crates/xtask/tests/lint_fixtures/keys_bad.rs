//! Fixture: key-determinism violations. Lines are pinned by the
//! integration test — do not reflow.

use std::collections::hash_map::RandomState;
use std::hash::DefaultHasher;

fn keyed() -> u64 {
    let _state = RandomState::new();
    let hasher = DefaultHasher::new();
    hasher.finish()
}
