//! A versioned on-disk model store.
//!
//! Trained models are JSON documents (everything in
//! [`polygraph_core::TrainedModel`] is serde). The registry writes each
//! published model as `model-v<N>.json` plus a `latest` pointer, using
//! write-to-temp + atomic rename so a crash mid-publish can never leave a
//! half-written "latest" model.

use polygraph_core::TrainedModel;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A directory of versioned models.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    dir: PathBuf,
}

impl ModelRegistry {
    /// Opens (creating if needed) a registry at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(Self {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Versions currently stored, ascending.
    pub fn versions(&self) -> io::Result<Vec<u64>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(v) = name
                .strip_prefix("model-v")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|v| v.parse::<u64>().ok())
            {
                out.push(v);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// The newest stored version, if any.
    pub fn latest_version(&self) -> io::Result<Option<u64>> {
        Ok(self.versions()?.into_iter().last())
    }

    /// Publishes a model as the next version and returns that version.
    ///
    /// Durability ordering: the version file's bytes are fsynced, its
    /// rename into place is made durable (directory fsync), and only
    /// *then* is the `latest` pointer rewritten — so a crash at any
    /// point can leave a stale or absent pointer (which
    /// [`Self::load_latest`] tolerates) but never a pointer naming a
    /// version whose bytes are not fully on disk.
    pub fn publish(&self, model: &TrainedModel) -> io::Result<u64> {
        let version = self.latest_version()?.map_or(1, |v| v + 1);
        let json = serde_json::to_vec_pretty(model)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let tmp = self.dir.join(format!(".model-v{version}.json.tmp"));
        let path = self.model_path(version);
        write_sync(&tmp, &json)?;
        fs::rename(&tmp, &path)?;
        // Make the rename itself durable before anything references the
        // new version: the pointer must never get ahead of the data.
        sync_dir(&self.dir)?;
        // Refresh the "latest" pointer the same way.
        let tmp = self.dir.join(".latest.tmp");
        write_sync(&tmp, version.to_string().as_bytes())?;
        fs::rename(&tmp, self.dir.join("latest"))?;
        sync_dir(&self.dir)?;
        Ok(version)
    }

    /// Loads a specific version.
    pub fn load(&self, version: u64) -> io::Result<TrainedModel> {
        let bytes = fs::read(self.model_path(version))?;
        serde_json::from_slice(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Loads the newest model, if any.
    ///
    /// Never returns a half-written or corrupt model: the `latest`
    /// pointer is only a hint, and any version that fails to parse (or
    /// was pruned between listing and reading) is skipped in favour of
    /// the next-newest one. Only when *no* stored version is loadable
    /// does this return `Ok(None)`.
    pub fn load_latest(&self) -> io::Result<Option<TrainedModel>> {
        Ok(self.load_latest_versioned()?.map(|(_, model)| model))
    }

    /// [`Self::load_latest`], also reporting which version was loaded.
    pub fn load_latest_versioned(&self) -> io::Result<Option<(u64, TrainedModel)>> {
        // Fast path: the pointer names a version that loads cleanly.
        if let Some(v) = self.latest_hint() {
            if let Ok(model) = self.load(v) {
                return Ok(Some((v, model)));
            }
        }
        // Slow path: newest→oldest over the directory listing, skipping
        // versions that vanished (concurrent prune) or fail to parse
        // (crash mid-write, disk corruption). I/O errors other than
        // those two still propagate — they mean the store itself is
        // unreadable, not that one artifact is bad.
        for v in self.versions()?.into_iter().rev() {
            match self.load(v) {
                Ok(model) => return Ok(Some((v, model))),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::NotFound | io::ErrorKind::InvalidData
                    ) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// The version named by the `latest` pointer file, when present and
    /// well-formed. An empty or garbled pointer (crash between the model
    /// rename and the pointer rename) is treated as absent rather than
    /// an error: the directory scan is the source of truth.
    fn latest_hint(&self) -> Option<u64> {
        let bytes = fs::read(self.dir.join("latest")).ok()?;
        std::str::from_utf8(&bytes).ok()?.trim().parse().ok()
    }

    /// Removes versions older than the newest `keep` (never removing the
    /// latest). Returns the versions removed.
    ///
    /// Tolerates racing with a concurrent publish or prune: a version
    /// that is already gone when its turn comes counts as removed.
    pub fn prune(&self, keep: usize) -> io::Result<Vec<u64>> {
        let versions = self.versions()?;
        if versions.len() <= keep.max(1) {
            return Ok(Vec::new());
        }
        let cut = versions.len() - keep.max(1);
        let mut removed = Vec::new();
        for &v in versions.get(..cut).unwrap_or_default() {
            match fs::remove_file(self.model_path(v)) {
                Ok(()) => removed.push(v),
                // Another pruner (or an operator) got there first; the
                // goal state — version gone — is reached either way.
                Err(e) if e.kind() == io::ErrorKind::NotFound => removed.push(v),
                Err(e) => return Err(e),
            }
        }
        Ok(removed)
    }

    fn model_path(&self, version: u64) -> PathBuf {
        self.dir.join(format!("model-v{version}.json"))
    }
}

/// Writes `bytes` to `path` and fsyncs the file before returning, so the
/// bytes are on disk (not just in the page cache) when the caller moves
/// on to publish a reference to them.
fn write_sync(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = fs::File::create(path)?;
    io::Write::write_all(&mut file, bytes)?;
    file.sync_all()
}

/// Fsyncs a directory so renames inside it survive a crash. On platforms
/// where directories cannot be opened or synced (e.g. Windows), the
/// failure is swallowed: ordering there is best-effort, exactly as it
/// was for the data files before this existed.
fn sync_dir(dir: &Path) -> io::Result<()> {
    match fs::File::open(dir) {
        Ok(handle) => match handle.sync_all() {
            Ok(()) => Ok(()),
            // Syncing a directory handle is unsupported on some
            // platforms/filesystems; that is a capability gap, not a
            // publish failure.
            Err(e) if e.kind() == io::ErrorKind::Unsupported => Ok(()),
            Err(e) => Err(e),
        },
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::{UserAgent, Vendor};
    use fingerprint::FeatureSet;
    use polygraph_core::{TrainConfig, TrainingSet};

    fn tiny_model(offset: f64) -> TrainedModel {
        let mut set = TrainingSet::new(2);
        for (base, ua) in [
            (offset, UserAgent::new(Vendor::Chrome, 60)),
            (offset + 10.0, UserAgent::new(Vendor::Chrome, 100)),
        ] {
            for j in 0..30 {
                set.push(vec![base + (j % 2) as f64 * 0.1, base], ua)
                    .unwrap();
            }
        }
        let fs = FeatureSet::table8().subset(&[0, 1]);
        let config = TrainConfig {
            k: 2,
            n_components: 2,
            min_samples_for_majority: 1,
            ..Default::default()
        };
        TrainedModel::fit(fs, &set, config).unwrap()
    }

    fn temp_registry(tag: &str) -> ModelRegistry {
        let dir = std::env::temp_dir().join(format!(
            "polygraph-registry-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        ModelRegistry::open(&dir).unwrap()
    }

    #[test]
    fn publish_assigns_increasing_versions() {
        let reg = temp_registry("versions");
        assert_eq!(reg.latest_version().unwrap(), None);
        assert!(reg.load_latest().unwrap().is_none());
        assert_eq!(reg.publish(&tiny_model(0.0)).unwrap(), 1);
        assert_eq!(reg.publish(&tiny_model(1.0)).unwrap(), 2);
        assert_eq!(reg.versions().unwrap(), vec![1, 2]);
        assert_eq!(reg.latest_version().unwrap(), Some(2));
    }

    #[test]
    fn load_round_trips_the_model() {
        let reg = temp_registry("roundtrip");
        let model = tiny_model(0.0);
        let v = reg.publish(&model).unwrap();
        let restored = reg.load(v).unwrap();
        assert_eq!(restored.cluster_table(), model.cluster_table());
        assert_eq!(
            restored.predict_cluster(&[0.0, 0.0]).unwrap(),
            model.predict_cluster(&[0.0, 0.0]).unwrap()
        );
    }

    #[test]
    fn load_latest_returns_newest() {
        let reg = temp_registry("latest");
        reg.publish(&tiny_model(0.0)).unwrap();
        let newer = tiny_model(5.0);
        reg.publish(&newer).unwrap();
        let restored = reg.load_latest().unwrap().expect("has models");
        assert_eq!(restored.cluster_table(), newer.cluster_table());
    }

    #[test]
    fn prune_keeps_newest() {
        let reg = temp_registry("prune");
        for i in 0..5 {
            reg.publish(&tiny_model(i as f64)).unwrap();
        }
        let removed = reg.prune(2).unwrap();
        assert_eq!(removed, vec![1, 2, 3]);
        assert_eq!(reg.versions().unwrap(), vec![4, 5]);
        // Pruning to zero still keeps the latest.
        let removed = reg.prune(0).unwrap();
        assert_eq!(removed, vec![4]);
        assert_eq!(reg.versions().unwrap(), vec![5]);
    }

    #[test]
    fn missing_version_is_an_error() {
        let reg = temp_registry("missing");
        assert!(reg.load(42).is_err());
    }

    #[test]
    fn load_latest_skips_half_written_models() {
        let reg = temp_registry("halfwritten");
        let good = tiny_model(0.0);
        reg.publish(&good).unwrap();
        let newer = tiny_model(5.0);
        reg.publish(&newer).unwrap();
        // Simulate a crash mid-write of v3: the file exists (and is the
        // newest by version number) but holds a truncated document.
        let full = serde_json::to_string(&tiny_model(9.0)).unwrap();
        fs::write(reg.dir().join("model-v3.json"), &full[..full.len() / 2]).unwrap();
        fs::write(reg.dir().join("latest"), "3").unwrap();
        let (v, restored) = reg.load_latest_versioned().unwrap().expect("v2 is intact");
        assert_eq!(v, 2, "the corrupt v3 must be skipped, not served");
        assert_eq!(restored.cluster_table(), newer.cluster_table());
    }

    #[test]
    fn corrupt_or_empty_latest_pointer_is_ignored() {
        let reg = temp_registry("badpointer");
        let model = tiny_model(0.0);
        reg.publish(&model).unwrap();
        for garbage in ["", "not-a-number", "99999"] {
            fs::write(reg.dir().join("latest"), garbage).unwrap();
            let restored = reg.load_latest().unwrap().expect("v1 is intact");
            assert_eq!(restored.cluster_table(), model.cluster_table());
        }
        // A registry holding *only* corrupt artifacts yields None, not
        // a garbage model and not an error.
        fs::write(reg.dir().join("model-v1.json"), "{oops").unwrap();
        assert!(reg.load_latest().unwrap().is_none());
    }

    /// Simulates the crash window the fsync ordering closes: a `latest`
    /// pointer that got ahead of its data. Before the fix, publish
    /// renamed the pointer without forcing the version file (or the
    /// rename itself) to disk, so a crash could leave `latest` → v2
    /// while `model-v2.json` is torn or missing. The reader must fall
    /// back to the newest intact version in every such state.
    #[test]
    fn torn_write_behind_an_advanced_pointer_falls_back_to_intact_version() {
        let reg = temp_registry("tornwrite");
        let model = tiny_model(0.0);
        reg.publish(&model).unwrap();

        // Crash state A: pointer advanced, version file truncated
        // mid-write (valid prefix, torn tail).
        let v2_json = serde_json::to_vec_pretty(&tiny_model(5.0)).unwrap();
        let torn = v2_json.get(..v2_json.len() / 2).unwrap();
        fs::write(reg.dir().join("model-v2.json"), torn).unwrap();
        fs::write(reg.dir().join("latest"), "2").unwrap();
        let restored = reg.load_latest_versioned().unwrap().expect("v1 intact");
        assert_eq!(restored.0, 1, "torn v2 must be skipped");
        assert_eq!(restored.1.cluster_table(), model.cluster_table());

        // Crash state B: pointer advanced, version file missing entirely
        // (rename never made it to disk).
        fs::remove_file(reg.dir().join("model-v2.json")).unwrap();
        fs::write(reg.dir().join("latest"), "2").unwrap();
        let restored = reg.load_latest_versioned().unwrap().expect("v1 intact");
        assert_eq!(restored.0, 1, "missing v2 must be skipped");

        // Recovery: the next publish overwrites the stale pointer and
        // the registry is healthy again.
        let v = reg.publish(&tiny_model(1.0)).unwrap();
        assert_eq!(v, 2);
        assert_eq!(
            reg.load_latest_versioned().unwrap().map(|(v, _)| v),
            Some(2)
        );
    }

    #[test]
    fn prune_tolerates_already_removed_versions() {
        let reg = temp_registry("pruneconc");
        for i in 0..4 {
            reg.publish(&tiny_model(i as f64)).unwrap();
        }
        // An operator (or concurrent pruner) already removed v1: prune
        // neither errors nor counts it, and converges on the same goal
        // state. (The listing-to-unlink race itself is exercised by
        // `publish_while_prune_never_serves_a_broken_latest`.)
        fs::remove_file(reg.dir().join("model-v1.json")).unwrap();
        let removed = reg.clone().prune(2).unwrap();
        assert_eq!(removed, vec![2]);
        assert_eq!(reg.versions().unwrap(), vec![3, 4]);
    }

    #[test]
    fn publish_while_prune_never_serves_a_broken_latest() {
        let reg = temp_registry("pubprune");
        reg.publish(&tiny_model(0.0)).unwrap();
        let publisher = {
            let reg = reg.clone();
            std::thread::spawn(move || {
                for i in 1..20 {
                    reg.publish(&tiny_model(i as f64)).unwrap();
                }
            })
        };
        // Interleave prunes and reads with the publisher. Whatever the
        // interleaving, load_latest must always produce *a* valid model.
        for _ in 0..40 {
            reg.prune(2).unwrap();
            let loaded = reg.load_latest().unwrap();
            assert!(loaded.is_some(), "a model was published before the loop");
        }
        publisher.join().unwrap();
        reg.prune(2).unwrap();
        assert!(reg.versions().unwrap().len() <= 2);
        let (v, _) = reg.load_latest_versioned().unwrap().expect("models remain");
        assert_eq!(v, 20, "the newest publish wins");
    }
}
