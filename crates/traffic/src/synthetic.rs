//! BrowserStack-style synthetic sweeps (Appendix-5).
//!
//! The paper's Tables 13 and 14 compare clustering quality of coarse- and
//! fine-grained fingerprints over clean, scripted browser launches across
//! operating systems: Chrome, Edge and Firefox on Windows 10/11
//! (430 Polygraph fingerprints) and on macOS Sonoma/Sequoia (320).
//! This module scripts the same launches against the simulated platform.

use browser_engine::catalog::legitimate_releases;
use browser_engine::{BrowserInstance, Os, UserAgent, Vendor};

/// One scripted launch: the instance to probe and the environment it ran
/// in.
#[derive(Debug, Clone)]
pub struct SyntheticSample {
    /// The launched (genuine) browser.
    pub instance: BrowserInstance,
    /// Its user-agent, OS included.
    pub ua: UserAgent,
    /// The host OS of the launch.
    pub os: Os,
}

/// Scripts launches of every catalogued release at or above
/// `min_version_blink`/`min_version_gecko` on each listed OS, with an
/// extra repeat of recent releases (mirroring the paper's per-environment
/// sample sizes).
pub fn sweep(
    oses: &[Os],
    min_chrome: u32,
    min_firefox: u32,
    repeats_recent: usize,
) -> Vec<SyntheticSample> {
    let mut out = Vec::new();
    for release in legitimate_releases() {
        let recent = match release.ua.vendor {
            Vendor::Chrome | Vendor::Edge => release.ua.version >= 100,
            Vendor::Firefox => release.ua.version >= 100,
        };
        let included = match release.ua.vendor {
            Vendor::Chrome | Vendor::Edge => release.ua.version >= min_chrome,
            Vendor::Firefox => release.ua.version >= min_firefox,
        };
        if !included {
            continue;
        }
        for &os in oses {
            let copies = if recent { 1 + repeats_recent } else { 1 };
            for _ in 0..copies {
                let ua = release.ua.with_os(os);
                out.push(SyntheticSample {
                    instance: BrowserInstance::genuine(ua),
                    ua,
                    os,
                });
            }
        }
    }
    out
}

/// The Windows 10/11 sweep of Table 13 (~430 fingerprints).
pub fn windows_sweep() -> Vec<SyntheticSample> {
    sweep(&[Os::Windows10, Os::Windows11], 59, 46, 1)
}

/// The macOS Sonoma/Sequoia sweep of Table 14 (~320 fingerprints). Legacy
/// Edge never shipped on macOS, and very old releases are not available on
/// modern macOS images, so the sweep starts later.
pub fn macos_sweep() -> Vec<SyntheticSample> {
    sweep(&[Os::MacOsSonoma, Os::MacOsSequoia], 80, 78, 1)
        .into_iter()
        .filter(|s| !(s.ua.vendor == Vendor::Edge && s.ua.version < 79))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingerprint::FeatureSet;

    #[test]
    fn windows_sweep_is_paper_scale() {
        let sweep = windows_sweep();
        assert!(
            (350..550).contains(&sweep.len()),
            "paper collected 430 Windows fingerprints; got {}",
            sweep.len()
        );
    }

    #[test]
    fn macos_sweep_is_paper_scale() {
        let sweep = macos_sweep();
        assert!(
            (250..420).contains(&sweep.len()),
            "paper collected 320 macOS fingerprints; got {}",
            sweep.len()
        );
        assert!(sweep
            .iter()
            .all(|s| matches!(s.os, Os::MacOsSonoma | Os::MacOsSequoia)));
        assert!(
            !sweep
                .iter()
                .any(|s| s.ua.vendor == Vendor::Edge && s.ua.version < 79),
            "no EdgeHTML on macOS"
        );
    }

    #[test]
    fn samples_are_genuine_and_os_invariant() {
        // Coarse-grained fingerprints are an engine attribute: the same
        // release on two OSes probes identically (why the paper's features
        // stay below the UA's entropy).
        let fs = FeatureSet::table8();
        let win = windows_sweep();
        let a = win.iter().find(|s| s.os == Os::Windows10).unwrap();
        let b = win
            .iter()
            .find(|s| s.os == Os::Windows11 && s.ua == a.ua)
            .unwrap();
        assert_eq!(fs.extract(&a.instance), fs.extract(&b.instance));
        assert!(a.instance.is_consistent());
    }

    #[test]
    fn sweep_covers_all_vendors() {
        let sweep = windows_sweep();
        for vendor in Vendor::ALL {
            assert!(
                sweep.iter().any(|s| s.ua.vendor == vendor),
                "{vendor} missing"
            );
        }
    }
}
