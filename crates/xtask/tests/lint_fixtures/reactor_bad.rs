//! Reactor-zone fixture: the readiness loop may neither read the wall
//! clock nor unwind on a malformed peer. Never compiled — scanned by
//! `tests/xtask_lint.rs`, which asserts rule codes and exact lines.

pub fn poll_once(events: &[u8]) -> u8 {
    let _deadline = Instant::now();
    let first = events[0];
    let token = events.first().unwrap();
    first + token
}
