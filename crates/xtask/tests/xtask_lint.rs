//! End-to-end tests of the polygraph-lint pass, driven in-process against
//! the bad/good fixtures under `tests/lint_fixtures/` and against the real
//! workspace (which must stay clean).

use polygraph_ml::pool::ThreadPool;
use std::path::{Path, PathBuf};
use xtask::{lint_workspace, lint_workspace_with_pool, LintConfig};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures")
}

/// A config whose zones match the fixture naming scheme instead of the
/// real workspace layout.
fn fixture_config() -> LintConfig {
    let mut config = LintConfig::default();
    config
        .apply_toml(
            r#"
[scan]
exclude = []

[zones]
determinism = ["det_", "reactor_", "quant_", "fleet_", "minibatch_"]
key_determinism = ["keys_"]
panic_safety = ["panic_", "reactor_"]
concurrency = ["lock_order_", "guard_scope_", "atomic_", "quant_", "fleet_", "minibatch_"]
"#,
        )
        .expect("fixture config parses");
    config
}

fn run_fixtures(config: &LintConfig) -> xtask::LintReport {
    lint_workspace(&fixtures_root(), config).expect("fixture scan succeeds")
}

#[test]
fn bad_fixtures_fire_every_rule_at_the_expected_lines() {
    let report = run_fixtures(&fixture_config());
    let got: Vec<(String, String, u32)> = report
        .diagnostics
        .iter()
        .map(|d| (d.file.clone(), d.rule.to_string(), d.line))
        .collect();
    let expected: Vec<(&str, &str, u32)> = vec![
        ("atomic_bad.rs", "POLY-L003", 6),       // epoch.store(…, Relaxed)
        ("atomic_bad.rs", "POLY-L003", 7),       // stop.store(…, Relaxed)
        ("atomic_bad.rs", "POLY-L003", 11),      // epoch.load(Relaxed)
        ("det_bad.rs", "POLY-D001", 4),          // use HashMap
        ("det_bad.rs", "POLY-D001", 5),          // use HashSet
        ("det_bad.rs", "POLY-D001", 8),          // HashMap::new()
        ("det_bad.rs", "POLY-D002", 9),          // Instant::now()
        ("det_bad.rs", "POLY-D002", 10),         // thread_rng()
        ("det_bad.rs", "POLY-D002", 11),         // from_entropy
        ("det_bad.rs", "POLY-D003", 11),         // StdRng
        ("fleet_bad.rs", "POLY-D001", 5),        // use HashMap in the router
        ("fleet_bad.rs", "POLY-D001", 7),        // HashMap ring type
        ("fleet_bad.rs", "POLY-D002", 8),        // Instant::now() on the routing path
        ("fleet_bad.rs", "POLY-D001", 9),        // HashMap::new()
        ("fleet_bad.rs", "POLY-L002", 16),       // write_all under ring.read()
        ("fleet_bad.rs", "POLY-L003", 21),       // version.store(…, Relaxed)
        ("guard_scope_bad.rs", "POLY-L002", 6),  // write_all under state.read()
        ("guard_scope_bad.rs", "POLY-L002", 12), // pool.run under state.read()
        ("guard_scope_bad.rs", "POLY-L002", 17), // assess under slot.read()
        ("guard_scope_bad.rs", "POLY-L002", 22), // nap_briefly (propagated sleep)
        ("keys_bad.rs", "POLY-D004", 4),         // use RandomState
        ("keys_bad.rs", "POLY-D004", 5),         // use DefaultHasher
        ("keys_bad.rs", "POLY-D004", 8),         // RandomState::new()
        ("keys_bad.rs", "POLY-D004", 9),         // DefaultHasher::new()
        ("lock_order_bad.rs", "POLY-L001", 10),  // ledger → index
        ("lock_order_bad.rs", "POLY-L001", 17),  // index → ledger
        ("lock_order_bad.rs", "POLY-L001", 24),  // ledger → audit via grab_audit
        ("lock_order_bad.rs", "POLY-L001", 35),  // audit → ledger
        ("minibatch_bad.rs", "POLY-D001", 5),    // use HashMap in the refit
        ("minibatch_bad.rs", "POLY-D001", 7),    // HashMap batch-order type
        ("minibatch_bad.rs", "POLY-D002", 8),    // Instant::now() batch cut
        ("minibatch_bad.rs", "POLY-D001", 9),    // HashMap::new()
        ("minibatch_bad.rs", "POLY-L002", 16),   // refit_streaming under slot.read()
        ("panic_bad.rs", "POLY-P004", 5),        // frame[0]
        ("panic_bad.rs", "POLY-P001", 6),        // unwrap()
        ("panic_bad.rs", "POLY-P002", 7),        // expect(…)
        ("panic_bad.rs", "POLY-P003", 8),        // panic!
        ("quant_bad.rs", "POLY-D001", 6),        // use HashMap in the kernel
        ("quant_bad.rs", "POLY-D001", 8),        // HashMap return type
        ("quant_bad.rs", "POLY-D002", 9),        // Instant::now() in compile
        ("quant_bad.rs", "POLY-D001", 10),       // HashMap::new()
        ("quant_bad.rs", "POLY-L002", 17),       // assess_many under slot.read()
        ("quant_bad.rs", "POLY-L003", 21),       // epoch.store(…, Relaxed)
        ("reactor_bad.rs", "POLY-D002", 6),      // Instant::now() in the poll loop
        ("reactor_bad.rs", "POLY-P004", 7),      // events[0]
        ("reactor_bad.rs", "POLY-P001", 8),      // unwrap()
        ("src/hygiene_bad.rs", "POLY-H002", 4),  // println!
        ("src/hygiene_bad.rs", "POLY-H001", 5),  // unsafe
        ("src/pool_bad.rs", "POLY-H003", 3),     // missing serial twin
    ];
    let expected: Vec<(String, String, u32)> = expected
        .into_iter()
        .map(|(f, r, l)| (f.to_string(), r.to_string(), l))
        .collect();
    assert_eq!(got, expected, "\nfull report:\n{}", report.render_text());
}

#[test]
fn good_fixtures_are_clean() {
    let report = run_fixtures(&fixture_config());
    for clean in [
        "atomic_good.rs",
        "det_good.rs",
        "fleet_good.rs",
        "guard_scope_good.rs",
        "keys_good.rs",
        "lock_order_good.rs",
        "minibatch_good.rs",
        "panic_good.rs",
        "quant_good.rs",
        "src/pool_good.rs",
    ] {
        assert!(
            report.diagnostics.iter().all(|d| d.file != clean),
            "{clean} should be clean:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn allow_entry_suppresses_exactly_one_diagnostic() {
    let mut config = fixture_config();
    config
        .apply_toml(
            r#"
[[allow]]
rule = "POLY-P004"
file = "panic_bad.rs"
line = 5
reason = "fixture test: index is bounds-checked by construction"
"#,
        )
        .expect("allow entry parses");
    let baseline = run_fixtures(&fixture_config());
    let report = run_fixtures(&config);
    assert_eq!(report.suppressed, 1);
    assert_eq!(report.diagnostics.len(), baseline.diagnostics.len() - 1);
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| !(d.rule == "POLY-P004" && d.file == "panic_bad.rs")),
        "the allowed diagnostic must be gone:\n{}",
        report.render_text()
    );
    assert!(report.unused_allows.is_empty());
}

#[test]
fn stale_allow_entries_are_flagged_not_silently_ignored() {
    let mut config = fixture_config();
    config
        .apply_toml(
            r#"
[[allow]]
rule = "POLY-P001"
file = "det_good.rs"
reason = "stale: this was fixed long ago"
"#,
        )
        .expect("allow entry parses");
    let report = run_fixtures(&config);
    assert_eq!(report.unused_allows.len(), 1);
    assert_eq!(report.unused_allows[0].file, "det_good.rs");
    assert!(report
        .render_text()
        .contains("error: stale allow entry (POLY-H004"));
    assert!(
        !report.is_clean(),
        "stale allow entries must fail the run even with zero violations"
    );
}

#[test]
fn json_report_is_deterministic_and_carries_positions() {
    let a = run_fixtures(&fixture_config()).render_json();
    let b = run_fixtures(&fixture_config()).render_json();
    assert_eq!(a, b, "same input must render byte-identical JSON");
    assert!(a.contains("\"rule\": \"POLY-P001\""));
    assert!(a.contains("\"file\": \"panic_bad.rs\""));
    assert!(a.contains("\"line\": 6"));
    assert!(!a.contains("timestamp"));
}

#[test]
fn pooled_scan_renders_byte_identical_to_serial() {
    let config = fixture_config();
    let serial = lint_workspace(&fixtures_root(), &config).expect("serial scan succeeds");
    let pooled = lint_workspace_with_pool(
        &fixtures_root(),
        &config,
        &ThreadPool::with_default_parallelism(),
    )
    .expect("pooled scan succeeds");
    assert_eq!(serial.render_text(), pooled.render_text());
    assert_eq!(serial.render_json(), pooled.render_json());
    assert_eq!(serial.render_sarif(), pooled.render_sarif());
}

#[test]
fn sarif_report_carries_fixture_findings() {
    let sarif = run_fixtures(&fixture_config()).render_sarif();
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"name\": \"polygraph-lint\""));
    assert!(sarif.contains("\"ruleId\": \"POLY-L001\""));
    assert!(sarif.contains("\"uri\": \"lock_order_bad.rs\""));
    assert!(sarif.contains("\"ruleId\": \"POLY-L002\""));
    assert!(sarif.contains("\"ruleId\": \"POLY-L003\""));
}

/// The `--self-check` pass must hold on the committed fixture corpus:
/// every rule fires somewhere, good twins stay clean, stale allows fail.
#[test]
fn self_check_passes_on_the_committed_fixtures() {
    xtask::self_check(&fixtures_root()).expect("self-check passes");
}

/// `fixture_lint_config()` (used by `--self-check`) and the TOML-built
/// config above must describe the same zones, or the CLI and the test
/// suite would silently test different things.
#[test]
fn fixture_lint_config_matches_the_toml_built_config() {
    let a = run_fixtures(&fixture_config()).render_json();
    let b = run_fixtures(&xtask::fixture_lint_config()).render_json();
    assert_eq!(a, b);
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn workspace_config() -> LintConfig {
    let mut config = LintConfig::default();
    let lint_toml = workspace_root().join("lint.toml");
    if let Ok(text) = std::fs::read_to_string(&lint_toml) {
        config
            .apply_toml(&text)
            .expect("committed lint.toml parses");
    }
    config
}

/// Every POLY-L `[[allow]]` in the committed `lint.toml` is load-bearing:
/// removing it resurfaces findings at exactly these locations. This pins
/// each dogfooding decision (audited allow vs. fix) — the orchestrator
/// guard-across-checkpoint finding was fixed instead, so it must NOT
/// reappear here (`real_workspace_is_clean` covers that side).
#[test]
fn dogfooding_allows_are_load_bearing() {
    let root = workspace_root();
    let full = workspace_config();
    let cases: &[(&str, &str, &[u32])] = &[
        ("POLY-L002", "crates/service/src/server.rs", &[1036, 1435]),
        ("POLY-L003", "crates/cache/src/lib.rs", &[105, 114, 156]),
        ("POLY-L003", "crates/ml/src/pool.rs", &[37, 101]),
    ];
    for (rule, file, lines) in cases {
        let mut config = full.clone();
        config
            .allow
            .retain(|a| !(a.rule == *rule && a.file == *file));
        let report = lint_workspace(&root, &config).expect("workspace scan succeeds");
        let got: Vec<u32> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == *rule && d.file == *file)
            .map(|d| d.line)
            .collect();
        assert_eq!(
            got, *lines,
            "the [[allow]] for {rule} in {file} no longer matches the code it audits"
        );
    }
}

/// The real workspace must be lint-clean under the committed `lint.toml`
/// — the same invocation CI runs as `cargo xtask lint`.
#[test]
fn real_workspace_is_clean() {
    let root = workspace_root();
    let config = workspace_config();
    let report = lint_workspace(&root, &config).expect("workspace scan succeeds");
    assert!(
        report.is_clean(),
        "the workspace must pass its own lint:\n{}",
        report.render_text()
    );
    assert!(
        report.unused_allows.is_empty(),
        "committed lint.toml has stale allow entries:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 50, "scan looks truncated");
}
