//! A minimal Rust lexer for the lint pass.
//!
//! The workspace is vendored-offline, so there is no `syn`/`proc-macro2`
//! to lean on; instead this module scans source text into a flat token
//! stream that is just rich enough for the lint rules:
//!
//! * comments (line, nested block) and doc comments are dropped;
//! * string / raw-string / byte-string / char literals are dropped, so a
//!   `"panic!"` inside a log message never trips a rule;
//! * identifiers (and numeric literals, which rules treat as ident-like
//!   when deciding whether a `[` is an index expression) and single-char
//!   punctuation survive, each tagged with its 1-based line;
//! * a second pass marks every token inside a `#[cfg(test)]`-gated item,
//!   so rules can skip test code.

/// One surviving token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// Whether the token sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier, keyword, or numeric literal.
    Ident(String),
    /// A single punctuation character.
    Punct(char),
}

impl Token {
    /// The identifier text, if this token is ident-like.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            TokenKind::Punct(_) => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// Tokenizes `source`, then marks `#[cfg(test)]` regions.
pub fn tokenize(source: &str) -> Vec<Token> {
    let mut tokens = scan(source);
    mark_test_regions(&mut tokens);
    tokens
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Scanner {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Consumes a quoted literal body after its opening `"`, honouring
    /// backslash escapes.
    fn skip_string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// Consumes a raw-string body after `r`/`br`, starting at the `#`s or
    /// the opening quote. Returns false if this is not actually a raw
    /// string (e.g. a raw identifier `r#fn`).
    fn skip_raw_string(&mut self) -> bool {
        let mut hashes = 0;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some('"') {
            return false;
        }
        for _ in 0..=hashes {
            self.bump();
        }
        // Scan for `"` followed by `hashes` hash marks.
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut n = 0;
                while n < hashes && self.peek(n) == Some('#') {
                    n += 1;
                }
                if n == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return true;
                }
            }
        }
        true
    }

    /// Consumes a `'…'` char literal or a `'ident` lifetime, after the
    /// opening quote has been peeked (not consumed).
    fn skip_char_or_lifetime(&mut self) {
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump();
                self.bump(); // the escape payload's first char
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        return;
                    }
                }
            }
            Some(c) if is_ident_start(c) && self.peek(1) != Some('\'') => {
                // A lifetime: consume its identifier and stop.
                while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
                    self.bump();
                }
            }
            Some(_) => {
                // Plain char literal 'x'.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
            }
            None => {}
        }
    }
}

fn scan(source: &str) -> Vec<Token> {
    let mut s = Scanner {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(c) = s.peek(0) {
        // Comments.
        if c == '/' && s.peek(1) == Some('/') {
            while let Some(c) = s.peek(0) {
                if c == '\n' {
                    break;
                }
                s.bump();
            }
            continue;
        }
        if c == '/' && s.peek(1) == Some('*') {
            s.bump();
            s.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (s.peek(0), s.peek(1)) {
                    (Some('/'), Some('*')) => {
                        s.bump();
                        s.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        s.bump();
                        s.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        s.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }
        // String-ish literals.
        if c == '"' {
            s.bump();
            s.skip_string_body();
            continue;
        }
        if c == '\'' {
            s.skip_char_or_lifetime();
            continue;
        }
        // Raw / byte string prefixes, and plain identifiers.
        if is_ident_start(c) {
            let line = s.line;
            // r"…" / r#"…"# / b"…" / br#"…"# / b'…'
            if c == 'r' && matches!(s.peek(1), Some('"') | Some('#')) {
                s.bump();
                if s.skip_raw_string() {
                    continue;
                }
                // `r#ident`: fall through and lex the identifier.
            }
            if c == 'b' {
                match s.peek(1) {
                    Some('"') => {
                        s.bump();
                        s.bump();
                        s.skip_string_body();
                        continue;
                    }
                    Some('\'') => {
                        s.bump();
                        s.skip_char_or_lifetime();
                        continue;
                    }
                    Some('r') if matches!(s.peek(2), Some('"') | Some('#')) => {
                        s.bump();
                        s.bump();
                        s.skip_raw_string();
                        continue;
                    }
                    _ => {}
                }
            }
            let mut ident = String::new();
            while matches!(s.peek(0), Some(c) if is_ident_continue(c)) {
                if let Some(c) = s.bump() {
                    ident.push(c);
                }
            }
            tokens.push(Token {
                kind: TokenKind::Ident(ident),
                line,
                in_test: false,
            });
            continue;
        }
        // Numeric literals (kept as ident-like tokens).
        if c.is_ascii_digit() {
            let line = s.line;
            let mut num = String::new();
            while matches!(s.peek(0), Some(c) if is_ident_continue(c)) {
                if let Some(c) = s.bump() {
                    num.push(c);
                }
            }
            tokens.push(Token {
                kind: TokenKind::Ident(num),
                line,
                in_test: false,
            });
            continue;
        }
        if c.is_whitespace() {
            s.bump();
            continue;
        }
        let line = s.line;
        s.bump();
        tokens.push(Token {
            kind: TokenKind::Punct(c),
            line,
            in_test: false,
        });
    }
    tokens
}

/// Marks every token belonging to a `#[cfg(test)]`-gated item (including
/// the attribute itself) with `in_test`.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let Some(attr_end) = matching_bracket(tokens, i + 1) else {
            break;
        };
        if !attr_is_cfg_test(&tokens[i..=attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = attr_end + 1;
        while j < tokens.len()
            && tokens[j].is_punct('#')
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match matching_bracket(tokens, j + 1) {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        // Find the end of the item: a `;` at delimiter depth 0, or the
        // close of its first depth-0 brace block.
        let mut depth = 0i32;
        let mut end = j;
        while end < tokens.len() {
            match tokens[end].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct('{') => {
                    if let Some(close) = matching_brace(tokens, end) {
                        end = close;
                    } else {
                        end = tokens.len() - 1;
                    }
                    break;
                }
                TokenKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let end = end.min(tokens.len() - 1);
        for t in tokens.iter_mut().take(end + 1).skip(i) {
            t.in_test = true;
        }
        i = end + 1;
    }
}

/// Whether an attribute token run `#[…]` is a `cfg(…)` that enables the
/// item under `test` (and not under `not(test)`).
fn attr_is_cfg_test(attr: &[Token]) -> bool {
    let has_cfg = attr.iter().any(|t| t.is_ident("cfg"));
    if !has_cfg {
        return false;
    }
    for (i, t) in attr.iter().enumerate() {
        if t.is_ident("test") {
            // Reject `not(test)`: look back past the opening paren.
            let negated = i >= 2 && attr[i - 1].is_punct('(') && attr[i - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Given the index of a `[`, returns the index of its matching `]`.
fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Given the index of a `{`, returns the index of its matching `}`.
/// Shared with the parser tier ([`crate::parser`]), which builds block
/// scopes on top of it.
pub fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_dropped() {
        let src = r###"
            // HashMap in a comment
            /* unwrap() in a block /* nested */ comment */
            let s = "panic!(inside a string)";
            let r = r#"unwrap() in a raw string"#;
            let b = b"expect(bytes)";
            let c = 'x';
            let esc = '\'';
            real_ident();
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(!ids.iter().any(|i| i == "unwrap"));
        assert!(!ids.iter().any(|i| i == "panic"));
        assert!(!ids.iter().any(|i| i == "expect"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { unwrap_me(x) }";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap_me".to_string()));
    }

    #[test]
    fn lines_are_tracked() {
        let src = "a\nb\n\nc";
        let toks = tokenize(src);
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn after() {}";
        let toks = tokenize(src);
        let unwrap_tok = toks.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert!(unwrap_tok.in_test);
        let live = toks.iter().find(|t| t.is_ident("live")).unwrap();
        assert!(!live.in_test);
        let after = toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert!(!after.in_test);
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }";
        let toks = tokenize(src);
        let unwrap_tok = toks.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert!(!unwrap_tok.in_test);
    }

    #[test]
    fn stacked_attributes_are_covered() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn t() { y.expect(\"boom\"); }";
        let toks = tokenize(src);
        let expect_tok = toks.iter().find(|t| t.is_ident("expect")).unwrap();
        assert!(expect_tok.in_test);
    }
}
