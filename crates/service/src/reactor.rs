//! A small hand-rolled readiness reactor over non-blocking sockets —
//! the multiplexed I/O core behind [`crate::server::ServerBackend::Reactor`].
//!
//! The workspace vendors every dependency, so instead of `mio` this
//! module provides the same shape from `std` alone:
//!
//! * [`Poll`] — a registration table of non-blocking [`TcpStream`]s.
//!   [`Poll::poll`] scans registered sources for readiness (a
//!   non-consuming `peek` probes read readiness; write readiness is
//!   reported level-triggered while a source keeps write interest) and
//!   parks in short scan intervals until an event, a wakeup, or the
//!   timeout.
//! * [`Waker`] — the self-pipe: a loopback socket pair owned by the
//!   `Poll`. Writing one byte from any thread makes the next scan return
//!   immediately with [`WAKE_TOKEN`], so shutdown latency is one poll
//!   cycle, never a read-timeout tick.
//! * [`ConnMachine`] — the explicit per-connection state machine
//!   (`Idle → Reading → Assessing → Writing → Idle`) that owns the
//!   resumable [`FrameAccumulator`] parse state and the partially
//!   flushed output buffer. It is pure with respect to I/O — bytes go in
//!   via [`ConnMachine::on_bytes`] and come out via
//!   [`ConnMachine::flush_into`] — so property tests drive it with
//!   arbitrary interleavings of partial reads, partial writes, and
//!   readiness events without a socket in sight.
//!
//! This module sits in both the determinism and panic-safety lint zones
//! (`cargo xtask lint`): it never reads a wall clock (timeouts are
//! counted in fixed scan intervals; the server tracks idle deadlines
//! through its injected `Clock`), and it never unwinds on network input.

use crate::framing::{FrameAccumulator, FrameStatus};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

/// How long one scan interval lasts: the granularity at which
/// [`Poll::poll`] re-probes readiness while nothing is ready. Wakeups
/// and newly readable sources are noticed within one interval.
pub const SCAN_INTERVAL: Duration = Duration::from_micros(500);

/// The reserved token [`Poll::poll`] reports when a [`Waker`] fired.
/// Connection tokens must never use this value.
pub const WAKE_TOKEN: Token = Token(usize::MAX);

/// Identifies one registered source in [`Poll`] events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness a registered source is watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report the source when bytes (or EOF, or a socket error) can be
    /// read without blocking.
    pub readable: bool,
    /// Report the source as writable on every scan (level-triggered):
    /// the owner attempts the write and re-arms on `WouldBlock`.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Write readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };

    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registered source (or [`WAKE_TOKEN`]).
    pub token: Token,
    /// Read readiness: data, EOF, or a pending socket error.
    pub readable: bool,
    /// Write readiness (level-triggered while write interest is held).
    pub writable: bool,
}

/// Reusable event buffer filled by [`Poll::poll`].
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events of the last poll.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.inner.iter()
    }

    /// Whether the last poll returned no events (pure timeout).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of events from the last poll.
    pub fn len(&self) -> usize {
        self.inner.len()
    }
}

#[derive(Debug)]
struct Source {
    /// A `try_clone` of the registered stream, used only for
    /// non-consuming readiness probes (`peek`).
    probe: TcpStream,
    interest: Interest,
}

/// The registration table plus the self-pipe. One `Poll` serves one
/// event-loop thread; `Waker`s clone out of it and may be fired from
/// anywhere.
#[derive(Debug)]
pub struct Poll {
    sources: BTreeMap<usize, Source>,
    wake_rx: TcpStream,
    wake_tx: TcpStream,
}

/// Cross-thread wakeup handle for a [`Poll`] (the self-pipe write end).
#[derive(Debug)]
pub struct Waker {
    tx: TcpStream,
}

impl Waker {
    /// Makes the paired [`Poll::poll`] return within one scan interval,
    /// reporting [`WAKE_TOKEN`]. A full pipe counts as already woken.
    pub fn wake(&self) -> io::Result<()> {
        match (&self.tx).write(&[1u8]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// Builds the loopback socket pair backing the self-pipe: a throwaway
/// ephemeral listener, one connect, one accept. Both ends end up
/// non-blocking; the listener is dropped immediately.
fn socket_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

impl Poll {
    /// A new registration table with its self-pipe.
    pub fn new() -> io::Result<Self> {
        let (wake_tx, wake_rx) = socket_pair()?;
        Ok(Self {
            sources: BTreeMap::new(),
            wake_rx,
            wake_tx,
        })
    }

    /// A wakeup handle for this poll, usable from any thread.
    pub fn waker(&self) -> io::Result<Waker> {
        Ok(Waker {
            tx: self.wake_tx.try_clone()?,
        })
    }

    /// Registers `stream` under `token`. The stream itself stays with
    /// the caller; the poll keeps only a probing clone.
    pub fn register(
        &mut self,
        stream: &TcpStream,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        if token == WAKE_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "WAKE_TOKEN is reserved for the self-pipe",
            ));
        }
        let probe = stream.try_clone()?;
        self.sources.insert(token.0, Source { probe, interest });
        Ok(())
    }

    /// Changes the interest of an already-registered source.
    pub fn reregister(&mut self, token: Token, interest: Interest) -> io::Result<()> {
        match self.sources.get_mut(&token.0) {
            Some(src) => {
                src.interest = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "reregister of an unknown token",
            )),
        }
    }

    /// Removes a source from the table.
    pub fn deregister(&mut self, token: Token) {
        self.sources.remove(&token.0);
    }

    /// Number of registered sources.
    pub fn registered(&self) -> usize {
        self.sources.len()
    }

    /// Drains the self-pipe; reports whether any wakeup byte arrived.
    fn drain_wake(&mut self) -> io::Result<bool> {
        let mut woken = false;
        let mut buf = [0u8; 64];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => return Ok(woken), // write end gone: treat as woken state
                Ok(_) => woken = true,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(woken),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Waits up to `timeout` for readiness, filling `events`.
    ///
    /// Returns immediately when any source is read-ready or a wakeup
    /// fired. Sources holding only write interest are reported after one
    /// scan interval (level-triggered with a throttle, so a peer that
    /// stopped reading cannot spin the loop hot). With nothing ready the
    /// call parks in [`SCAN_INTERVAL`] steps until the timeout lapses
    /// and returns an empty `events`.
    pub fn poll(&mut self, events: &mut Events, timeout: Duration) -> io::Result<()> {
        events.inner.clear();
        let interval_us = SCAN_INTERVAL.as_micros().max(1);
        let scans = (timeout.as_micros() / interval_us).max(1);
        let mut scan: u128 = 0;
        loop {
            let woken = self.drain_wake()?;
            if woken {
                events.inner.push(Event {
                    token: WAKE_TOKEN,
                    readable: true,
                    writable: false,
                });
            }
            let mut any_read = woken;
            let mut probe_byte = [0u8; 1];
            for (&token, source) in &self.sources {
                let mut readable = false;
                if source.interest.readable {
                    readable = match source.probe.peek(&mut probe_byte) {
                        // Data buffered, or EOF (peek returns Ok(0)):
                        // either way the owner's read will not block.
                        Ok(_) => true,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => false,
                        // A pending socket error is readiness too — the
                        // owner's read surfaces it and closes the slot.
                        Err(_) => true,
                    };
                }
                let writable = source.interest.writable;
                if readable || writable {
                    events.inner.push(Event {
                        token: Token(token),
                        readable,
                        writable,
                    });
                }
                any_read |= readable;
            }
            if any_read {
                return Ok(());
            }
            if !events.inner.is_empty() {
                // Only optimistic write readiness: throttle one interval
                // before handing the retry back to the caller.
                thread::sleep(SCAN_INTERVAL);
                return Ok(());
            }
            scan += 1;
            if scan >= scans {
                return Ok(());
            }
            thread::sleep(SCAN_INTERVAL);
        }
    }
}

/// Where a connection currently sits in its serve cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnPhase {
    /// No buffered input, no pending output: waiting for readiness.
    #[default]
    Idle,
    /// Bytes buffered but no complete frame taken yet.
    Reading,
    /// A batch of complete frames has been taken and is being assessed.
    Assessing,
    /// Output is queued and not yet fully flushed.
    Writing,
}

/// Progress report of one [`ConnMachine::flush_into`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushProgress {
    /// Bytes written by this call.
    pub wrote: usize,
    /// Whether the output buffer fully drained.
    pub complete: bool,
}

/// The explicit per-connection state machine shared by the reactor
/// event loop and the property tests.
///
/// All I/O stays outside: readiness events feed bytes in through
/// [`ConnMachine::on_bytes`], the server takes batches with
/// [`ConnMachine::take_frames`], queues replies with
/// [`ConnMachine::queue_output`], and drains them with
/// [`ConnMachine::flush_into`] — which tolerates arbitrary partial
/// writes (`WouldBlock`) and resumes where it stopped. No frame is ever
/// dropped, duplicated, or reordered by construction: the accumulator
/// consumes input in order and the output buffer is append-only until
/// fully flushed.
#[derive(Debug, Default)]
pub struct ConnMachine {
    acc: FrameAccumulator,
    out: Vec<u8>,
    flushed: usize,
    phase: ConnPhase,
    close_after_flush: bool,
    eof: bool,
}

impl ConnMachine {
    /// A fresh connection in [`ConnPhase::Idle`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Current phase.
    pub fn phase(&self) -> ConnPhase {
        self.phase
    }

    /// Feeds bytes delivered by a readiness event into the resumable
    /// frame parser.
    pub fn on_bytes(&mut self, chunk: &[u8]) {
        if chunk.is_empty() {
            return;
        }
        self.acc.extend(chunk);
        if matches!(self.phase, ConnPhase::Idle) {
            self.phase = ConnPhase::Reading;
        }
    }

    /// Records that the peer half-closed: buffered frames are still
    /// answered, then the connection closes cleanly once flushed.
    pub fn on_eof(&mut self) {
        self.eof = true;
    }

    /// Whether the peer already half-closed.
    pub fn saw_eof(&self) -> bool {
        self.eof
    }

    /// Complete frames ready to take. Zero once the machine is closing.
    pub fn frames_ready(&self) -> usize {
        if self.close_after_flush {
            0
        } else {
            self.acc.ready_frames()
        }
    }

    /// Whether un-takeable bytes are buffered (a partial frame): a read
    /// timeout in this state is a stall, not keep-alive idleness.
    pub fn has_partial_input(&self) -> bool {
        !self.acc.is_empty()
    }

    /// Whether the front of the input buffer declares an oversize frame.
    pub fn input_oversize(&self) -> bool {
        self.acc.status() == FrameStatus::Oversize
    }

    /// Takes up to `max` complete frames (moving to
    /// [`ConnPhase::Assessing`]); the bool reports an oversize header.
    pub fn take_frames(&mut self, max: usize) -> (Vec<Vec<u8>>, bool) {
        let split = self.acc.split(max);
        if !split.0.is_empty() || split.1 {
            self.phase = ConnPhase::Assessing;
        }
        split
    }

    /// Direct access to the accumulator, for the server's shared
    /// batch-and-shed path.
    pub fn accumulator_mut(&mut self) -> &mut FrameAccumulator {
        &mut self.acc
    }

    /// Appends reply bytes; with `close_after` the connection closes as
    /// soon as everything queued so far has flushed (the oversize /
    /// cannot-resynchronise path).
    pub fn queue_output(&mut self, bytes: &[u8], close_after: bool) {
        self.out.extend_from_slice(bytes);
        if close_after {
            self.close_after_flush = true;
        }
        if self.pending_output() > 0 {
            self.phase = ConnPhase::Writing;
        } else {
            self.settle_phase();
        }
    }

    /// Bytes queued but not yet flushed.
    pub fn pending_output(&self) -> usize {
        self.out.len().saturating_sub(self.flushed)
    }

    /// Whether the machine needs write readiness.
    pub fn wants_write(&self) -> bool {
        self.pending_output() > 0
    }

    /// Whether a close has been requested (flushed or not). Once set, the
    /// machine accepts no further frames.
    pub fn close_requested(&self) -> bool {
        self.close_after_flush
    }

    /// Whether the slot should be torn down (close requested and every
    /// queued byte flushed).
    pub fn should_close(&self) -> bool {
        self.close_after_flush && self.pending_output() == 0
    }

    /// Writes as much pending output as `sink` accepts. `WouldBlock`
    /// pauses the flush (the machine keeps its position and retries on
    /// the next writable event); any other error propagates.
    pub fn flush_into<W: Write>(&mut self, sink: &mut W) -> io::Result<FlushProgress> {
        let mut wrote = 0usize;
        loop {
            let pending = self.out.get(self.flushed..).unwrap_or_default();
            if pending.is_empty() {
                self.out.clear();
                self.flushed = 0;
                self.settle_phase();
                return Ok(FlushProgress {
                    wrote,
                    complete: true,
                });
            }
            match sink.write(pending) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.flushed += n;
                    wrote += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(FlushProgress {
                        wrote,
                        complete: false,
                    })
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// After a full flush (or an empty queue), falls back to the phase
    /// the buffered input implies.
    fn settle_phase(&mut self) {
        self.phase = if self.acc.ready_frames() > 0 {
            ConnPhase::Assessing
        } else if !self.acc.is_empty() {
            ConnPhase::Reading
        } else {
            ConnPhase::Idle
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_pair_waker_wakes_within_one_scan() {
        let mut poll = Poll::new().unwrap();
        let waker = poll.waker().unwrap();
        let mut events = Events::new();

        // Without a wake, a short poll times out empty.
        poll.poll(&mut events, Duration::from_millis(2)).unwrap();
        assert!(events.is_empty());

        // With a wake (even fired before the poll), it returns WAKE_TOKEN.
        waker.wake().unwrap();
        poll.poll(&mut events, Duration::from_secs(5)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events.iter().next().unwrap().token, WAKE_TOKEN);

        // The wake is edge-consumed: the next poll is quiet again.
        poll.poll(&mut events, Duration::from_millis(2)).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn peek_probe_reports_read_readiness_without_consuming() {
        let (a, b) = socket_pair().unwrap();
        let mut poll = Poll::new().unwrap();
        poll.register(&b, Token(7), Interest::READABLE).unwrap();

        let mut events = Events::new();
        poll.poll(&mut events, Duration::from_millis(2)).unwrap();
        assert!(events.is_empty(), "nothing written yet");

        (&a).write_all(b"xyz").unwrap();
        poll.poll(&mut events, Duration::from_secs(5)).unwrap();
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, Token(7));
        assert!(ev.readable);

        // The probe must not have consumed the bytes.
        let mut buf = [0u8; 3];
        let mut owned = b;
        owned.set_nonblocking(false).unwrap();
        owned.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"xyz");
    }

    #[test]
    fn write_interest_is_reported_level_triggered() {
        let (_a, b) = socket_pair().unwrap();
        let mut poll = Poll::new().unwrap();
        poll.register(&b, Token(3), Interest::WRITABLE).unwrap();
        let mut events = Events::new();
        poll.poll(&mut events, Duration::from_secs(5)).unwrap();
        let ev = events.iter().next().unwrap();
        assert!(ev.writable && !ev.readable);

        poll.reregister(Token(3), Interest::READABLE).unwrap();
        poll.poll(&mut events, Duration::from_millis(2)).unwrap();
        assert!(events.is_empty(), "write interest dropped");
        poll.deregister(Token(3));
        assert_eq!(poll.registered(), 0);
    }

    #[test]
    fn wake_token_cannot_be_registered() {
        let (_a, b) = socket_pair().unwrap();
        let mut poll = Poll::new().unwrap();
        let err = poll
            .register(&b, WAKE_TOKEN, Interest::READABLE)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn conn_machine_walks_reading_assessing_writing_idle() {
        let mut m = ConnMachine::new();
        assert_eq!(m.phase(), ConnPhase::Idle);

        let mut wire = Vec::new();
        wire.extend_from_slice(&3u16.to_le_bytes());
        wire.extend_from_slice(b"abc");
        m.on_bytes(&wire[..2]);
        assert_eq!(m.phase(), ConnPhase::Reading);
        assert_eq!(m.frames_ready(), 0);
        m.on_bytes(&wire[2..]);
        assert_eq!(m.frames_ready(), 1);

        let (frames, oversize) = m.take_frames(32);
        assert_eq!(m.phase(), ConnPhase::Assessing);
        assert!(!oversize);
        assert_eq!(frames, vec![b"abc".to_vec()]);

        m.queue_output(b"REPLY", false);
        assert_eq!(m.phase(), ConnPhase::Writing);
        let mut sink = Vec::new();
        let progress = m.flush_into(&mut sink).unwrap();
        assert!(progress.complete);
        assert_eq!(progress.wrote, 5);
        assert_eq!(sink, b"REPLY");
        assert_eq!(m.phase(), ConnPhase::Idle);
        assert!(!m.should_close());
    }

    /// A sink that accepts a bounded number of bytes, then `WouldBlock`s.
    struct ThrottledSink {
        accepted: Vec<u8>,
        budget: usize,
    }

    impl Write for ThrottledSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "throttled"));
            }
            let n = buf.len().min(self.budget);
            self.accepted
                .extend_from_slice(buf.get(..n).unwrap_or_default());
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_writes_resume_without_loss_or_duplication() {
        let mut m = ConnMachine::new();
        m.queue_output(b"0123456789", false);
        let mut sink = ThrottledSink {
            accepted: Vec::new(),
            budget: 4,
        };
        let p = m.flush_into(&mut sink).unwrap();
        assert!(!p.complete);
        assert_eq!(p.wrote, 4);
        assert!(m.wants_write());
        assert_eq!(m.phase(), ConnPhase::Writing);

        // More output queued while the first flush is stuck mid-buffer.
        m.queue_output(b"ABC", false);
        sink.budget = 64;
        let p = m.flush_into(&mut sink).unwrap();
        assert!(p.complete);
        assert_eq!(sink.accepted, b"0123456789ABC");
        assert!(!m.wants_write());
    }

    #[test]
    fn close_after_flush_waits_for_the_last_byte() {
        let mut m = ConnMachine::new();
        m.queue_output(b"BYE", true);
        assert!(!m.should_close(), "output still pending");
        assert_eq!(m.frames_ready(), 0, "a closing machine takes no frames");
        let mut sink = Vec::new();
        m.flush_into(&mut sink).unwrap();
        assert!(m.should_close());
    }
}
