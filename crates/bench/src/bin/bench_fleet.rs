//! `bench_fleet`: fleet-level serving throughput of the consistent-hash
//! risk-server fleet on one seeded synthetic traffic replay — the
//! `BENCH_fleet.json` artifact the CI fleet gate consumes.
//!
//! Methodology:
//!
//! 1. Train the paper model once and build one pool of `distinct`
//!    generated submissions plus one seeded replay sequence over it —
//!    identical across every leg.
//! 2. For node counts 1, 2 and 4: start a [`RiskFleet`] whose nodes each
//!    carry a *fixed-size* verdict cache deliberately smaller than the
//!    distinct working set, partition the sequence by the fleet router's
//!    key assignment, replay each node's share in pipelined
//!    [`MAX_BATCH_PER_GUARD`]-frame windows, and merge the verdicts back
//!    into original sequence order.
//! 3. Assert the merged verdict byte-stream is identical at every node
//!    count — sharding must be invisible except in speed.
//! 4. The scaling claim: aggregate frames/sec rises monotonically
//!    1 → 2 → 4. On a single-core host this is *not* a parallelism
//!    effect — it is the honest operational reason to shard: each node
//!    added brings its own cache, the aggregate capacity grows past the
//!    distinct working set, and the fleet-wide hit rate (and therefore
//!    throughput) climbs. `cargo xtask bench-check` gates the
//!    monotonicity.
//! 5. A chaos leg: a 4-node fleet mid-rollout (canary promoted from a
//!    shared [`ModelRegistry`]) with one un-promoted node killed. The
//!    storm is replayed through the failover [`FleetClient`]; every
//!    verdict must match the healthy-fleet reference byte for byte, and
//!    every surviving node's `cache.hits + cache.misses ==
//!    assessed + malformed + shed_exempt` identity must balance.
//!
//! `--smoke` selects the small deterministic configuration CI runs.

use polygraph_bench::{train_paper_model, ExpOptions};
use polygraph_core::TrainedModel;
use polygraph_service::proto::VERDICT_LEN;
use polygraph_service::{
    FleetClient, FleetConfig, ModelRegistry, RiskClientConfig, RiskFleet, RiskServerConfig,
    RolloutController, RolloutStep, MAX_BATCH_PER_GUARD,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use traffic::TrafficConfig;

/// Node counts the scaling legs run, in order.
const NODE_COUNTS: [usize; 3] = [1, 2, 4];

#[derive(Debug, Clone)]
struct Options {
    seed: u64,
    /// Frames in the replay sequence (per leg; the sequence is shared).
    frames: usize,
    /// Distinct generated sessions in the pool. Coarse fingerprints
    /// repeat heavily (the paper's premise), so the *cache-key* working
    /// set is much smaller — the bench measures it and reports it as
    /// `distinct_keys`.
    distinct: usize,
    /// Sessions in the model-training traffic window.
    sessions: usize,
    /// Per-node cache geometry, fixed across legs.
    cache_shards: usize,
    cache_capacity: usize,
    /// Frames the chaos leg replays through the failover client.
    chaos_frames: usize,
    out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            seed: TrafficConfig::paper_training().seed,
            frames: 60_000,
            distinct: 6_000,
            sessions: 20_000,
            // Deliberately a fraction of the distinct-key working set:
            // one node's cache thrashes, the 4-node aggregate covers the
            // whole set, and the fleet-wide hit rate — not parallelism,
            // which a one-core host does not have — drives the scaling
            // the gate asserts.
            cache_shards: 4,
            cache_capacity: 2_048,
            chaos_frames: 3_000,
            out: Some("results/BENCH_fleet.json".to_string()),
        }
    }
}

/// The CI smoke configuration: the same cache-vs-working-set geometry
/// (that ratio *is* the experiment), a shorter replay and a smaller
/// training window.
fn smoke_options() -> Options {
    Options {
        frames: 45_000,
        sessions: 6_000,
        ..Options::default()
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("bench_fleet: {msg}");
    eprintln!(
        "usage: bench_fleet [--smoke] [--seed S] [--frames N] [--distinct N] [--sessions N] \
         [--cache-shards N] [--cache-capacity N] [--chaos-frames N] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().collect();
    let mut opts = if args.iter().any(|a| a == "--smoke") {
        smoke_options()
    } else {
        Options::default()
    };
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--smoke" {
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            usage_error(&format!("{flag} needs a value"));
        };
        match flag {
            "--seed" => opts.seed = parse(flag, value),
            "--frames" => opts.frames = parse(flag, value),
            "--distinct" => opts.distinct = parse(flag, value),
            "--sessions" => opts.sessions = parse(flag, value),
            "--cache-shards" => opts.cache_shards = parse(flag, value),
            "--cache-capacity" => opts.cache_capacity = parse(flag, value),
            "--chaos-frames" => opts.chaos_frames = parse(flag, value),
            "--out" => opts.out = Some(value.clone()),
            other => usage_error(&format!("unknown argument {other:?}")),
        }
        i += 2;
    }
    if opts.distinct == 0 || opts.frames == 0 {
        usage_error("--frames and --distinct must be positive");
    }
    opts
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| usage_error(&format!("invalid {flag} value {value:?}")))
}

/// Windows each node's replay thread keeps in flight — well under the
/// per-node `shed_limit` so overload shedding can never fire and break
/// the byte-identity gate.
const PIPELINE_DEPTH: usize = 4;

/// One node's share of the leg: positions into the shared sequence, in
/// original order.
fn partition(fleet: &RiskFleet, keys: &[u64], sequence: &[usize]) -> Vec<Vec<usize>> {
    let mut shares: Vec<Vec<usize>> = vec![Vec::new(); fleet.node_count()];
    for (pos, &idx) in sequence.iter().enumerate() {
        shares[fleet.router().route(keys[idx])].push(pos);
    }
    shares
}

struct LegResult {
    nodes: usize,
    frames_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    hit_rate: f64,
    hits: u64,
    misses: u64,
    /// Merged verdict bytes in original sequence order.
    verdicts: Vec<u8>,
}

/// Replays `positions` (a node's share of `sequence`) against one node
/// in pipelined windows; fills `verdicts` at each frame's original
/// offset and returns the per-frame window latencies.
fn replay_share(
    addr: std::net::SocketAddr,
    pool: &[Vec<u8>],
    sequence: &[usize],
    positions: &[usize],
    verdicts: &mut [u8],
) -> Vec<f64> {
    if positions.is_empty() {
        return Vec::new();
    }
    let mut stream = TcpStream::connect(addr).expect("connect to fleet node");
    stream.set_nodelay(true).expect("set nodelay");
    let windows: Vec<&[usize]> = positions.chunks(MAX_BATCH_PER_GUARD).collect();
    let mut per_frame_us = Vec::with_capacity(positions.len());
    let mut wire = Vec::new();
    let mut write_window = |stream: &mut TcpStream, window: &[usize]| {
        wire.clear();
        for &pos in window {
            let frame = &pool[sequence[pos]];
            wire.extend_from_slice(&(frame.len() as u16).to_le_bytes());
            wire.extend_from_slice(frame);
        }
        stream.write_all(&wire).expect("write window");
    };
    for window in windows.iter().take(PIPELINE_DEPTH) {
        write_window(&mut stream, window);
    }
    let mut last_done = Instant::now();
    for (r, window) in windows.iter().enumerate() {
        let mut replies = vec![0u8; window.len() * VERDICT_LEN];
        stream
            .read_exact(&mut replies)
            .expect("read window verdicts");
        let now = Instant::now();
        let us = (now - last_done).as_secs_f64() * 1e6 / window.len() as f64;
        last_done = now;
        per_frame_us.extend(std::iter::repeat_n(us, window.len()));
        for (k, &pos) in window.iter().enumerate() {
            verdicts[pos * VERDICT_LEN..(pos + 1) * VERDICT_LEN]
                .copy_from_slice(&replies[k * VERDICT_LEN..(k + 1) * VERDICT_LEN]);
        }
        if let Some(next) = windows.get(r + PIPELINE_DEPTH) {
            write_window(&mut stream, next);
        }
    }
    per_frame_us
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// One scaling leg: a fresh fleet of `nodes`, the whole sequence
/// partitioned by the ring and replayed (one thread per node), merged
/// back into original order.
fn run_leg(
    model: &TrainedModel,
    opts: &Options,
    nodes: usize,
    pool: &[Vec<u8>],
    keys: &[u64],
    sequence: &[usize],
) -> LegResult {
    let fleet = RiskFleet::start(
        model,
        FleetConfig {
            nodes,
            node: RiskServerConfig {
                cache_shards: opts.cache_shards,
                cache_capacity: opts.cache_capacity,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("start fleet");
    let shares = partition(&fleet, keys, sequence);
    let mut verdicts = vec![0u8; sequence.len() * VERDICT_LEN];
    let started = Instant::now();
    // Shares interleave in sequence order, so the merged buffer cannot
    // be split into disjoint slices: each thread fills its own
    // position-keyed scratch and the merge happens at join.
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (node, share) in shares.iter().enumerate() {
            let addr = fleet.addr(node).expect("node address");
            handles.push(scope.spawn(move || {
                let mut scratch = vec![0u8; sequence.len() * VERDICT_LEN];
                let us = replay_share(addr, pool, sequence, share, &mut scratch);
                (share, scratch, us)
            }));
        }
        let mut all_us = Vec::with_capacity(sequence.len());
        for handle in handles {
            let (share, scratch, us) = handle.join().expect("replay thread");
            for &pos in share {
                verdicts[pos * VERDICT_LEN..(pos + 1) * VERDICT_LEN]
                    .copy_from_slice(&scratch[pos * VERDICT_LEN..(pos + 1) * VERDICT_LEN]);
            }
            all_us.extend(us);
        }
        all_us
    });
    let elapsed = started.elapsed().as_secs_f64();

    let (mut hits, mut misses) = (0u64, 0u64);
    for node in 0..fleet.node_count() {
        let stats = fleet.node_stats(node).expect("live node stats");
        assert_eq!(
            stats.cache_hits + stats.cache_misses,
            stats.assessed + stats.malformed + stats.cache_shed_exempt,
            "node {node} books out of balance on the {nodes}-node leg"
        );
        hits += stats.cache_hits;
        misses += stats.cache_misses;
    }
    fleet.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let lookups = hits + misses;
    LegResult {
        nodes,
        frames_per_sec: sequence.len() as f64 / elapsed.max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        hit_rate: if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        },
        hits,
        misses,
        verdicts,
    }
}

struct ChaosResult {
    nodes: usize,
    killed_node: usize,
    frames: usize,
    books_balanced: bool,
    verdicts_match: bool,
    failovers: u64,
    exhausted: u64,
}

/// The mid-rollout kill leg: canary promoted, an un-promoted node
/// killed, the storm replayed through the failover client and checked
/// byte for byte against the healthy-fleet reference.
fn run_chaos_leg(
    model: &TrainedModel,
    opts: &Options,
    pool: &[Vec<u8>],
    sequence: &[usize],
    reference: &[u8],
) -> ChaosResult {
    const NODES: usize = 4;
    const KILLED: usize = 2; // beyond the canary: still serving v1 when it dies
    let dir = std::env::temp_dir().join(format!("polygraph-bench-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = ModelRegistry::open(&dir).expect("open bench registry");
    // The rollout candidate is behaviourally identical, so a mixed fleet
    // mid-rollout still agrees with the reference verdict stream.
    registry.publish(model).expect("publish candidate");
    let mut fleet = RiskFleet::start(
        model,
        FleetConfig {
            nodes: NODES,
            node: RiskServerConfig {
                cache_shards: opts.cache_shards,
                cache_capacity: opts.cache_capacity,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("start chaos fleet");
    let mut rollout =
        RolloutController::new(&registry, Vec::new(), 0.0).expect("rollout controller");
    match rollout.advance(&fleet) {
        RolloutStep::Promoted { .. } => {}
        other => panic!("canary promotion failed: {other:?}"),
    }
    assert!(fleet.kill_node(KILLED), "victim must be live");

    let mut client = FleetClient::connect(
        &fleet,
        RiskClientConfig {
            request_timeout: Duration::from_millis(500),
            max_retries: 0,
            ..Default::default()
        },
    );
    let frames = opts.chaos_frames.min(sequence.len());
    let mut verdicts_match = true;
    for (pos, &idx) in sequence.iter().take(frames).enumerate() {
        // The storm replays a prefix of the shared sequence; decode the
        // pooled frame back into a Submission for the routing client.
        let sub = fingerprint::decode_submission(&pool[idx]).expect("pool frame decodes");
        let verdict = client
            .assess_submission(&sub)
            .expect("no frame may fail fleet-wide");
        let expect = &reference[pos * VERDICT_LEN..(pos + 1) * VERDICT_LEN];
        if verdict.encode() != *expect {
            verdicts_match = false;
        }
    }

    let mut books_balanced = true;
    for node in 0..NODES {
        let Some(stats) = fleet.node_stats(node) else {
            continue;
        };
        if stats.cache_hits + stats.cache_misses
            != stats.assessed + stats.malformed + stats.cache_shed_exempt
        {
            books_balanced = false;
        }
    }
    let snapshot = fleet.obs().snapshot();
    let failovers = snapshot
        .counters
        .get("fleet.client.failovers")
        .copied()
        .unwrap_or(0);
    let exhausted = snapshot
        .counters
        .get("fleet.client.exhausted")
        .copied()
        .unwrap_or(0);
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    ChaosResult {
        nodes: NODES,
        killed_node: KILLED,
        frames,
        books_balanced,
        verdicts_match,
        failovers,
        exhausted,
    }
}

fn main() {
    let opts = parse_options();
    println!(
        "bench_fleet: seed {:#x}, {} frames over {} distinct, per-node cache {}x{}, \
         {} training sessions",
        opts.seed,
        opts.frames,
        opts.distinct,
        opts.cache_shards,
        opts.cache_capacity,
        opts.sessions
    );

    let (model, _data) = train_paper_model(ExpOptions {
        sessions: opts.sessions,
        seed: opts.seed,
    });

    // The shared pool and replay sequence — identical for every leg, so
    // merged verdict streams are directly comparable.
    let traffic_config = TrafficConfig::paper_training()
        .with_sessions(opts.distinct)
        .with_seed(opts.seed.wrapping_add(1));
    let replay_traffic = traffic::generate(&fingerprint::FeatureSet::table8(), &traffic_config);
    // Generated coarse fingerprints repeat heavily (a few hundred
    // distinct value tuples per window — the paper's premise), which
    // would let a tiny cache cover the whole key space. Web-scale
    // traffic also carries a long tail of distinct variants, and that
    // tail is what capacity planning is about: jitter two feature
    // values by the session index so every pool entry is its own cache
    // key while the cluster geometry stays recognisable.
    let pool: Vec<Vec<u8>> = replay_traffic
        .sessions
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut values = s.values.clone();
            if values.len() >= 2 {
                let tail = values.len() - 1;
                values[tail] = values[tail].wrapping_add((i as u32) & 0xFF);
                values[tail - 1] = values[tail - 1].wrapping_add(((i as u32) >> 8) & 0xFF);
            }
            let sub = fingerprint::Submission {
                session_id: s.session_id,
                user_agent: s.claimed.to_ua_string(),
                values,
            };
            fingerprint::encode_submission(&sub)
                .expect("generated submission encodes")
                .to_vec()
        })
        .collect();
    let keys: Vec<u64> = pool
        .iter()
        .map(|frame| fingerprint::submission_cache_key(frame).expect("generated frame keys"))
        .collect();
    let distinct_keys = {
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    };
    println!(
        "  {} distinct cache keys in the pool (per-node cache holds {})",
        distinct_keys, opts.cache_capacity
    );
    if opts.cache_capacity >= distinct_keys {
        eprintln!(
            "bench_fleet: warning: one node's cache already covers the key working set; \
             scaling legs will be flat"
        );
    }
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0xF1EE);
    let sequence: Vec<usize> = (0..opts.frames)
        .map(|_| rng.gen_range(0..pool.len()))
        .collect();

    let legs: Vec<LegResult> = NODE_COUNTS
        .iter()
        .map(|&nodes| run_leg(&model, &opts, nodes, &pool, &keys, &sequence))
        .collect();

    // The sharding-invisibility gate: every leg's merged stream is
    // byte-identical.
    for leg in &legs[1..] {
        assert_eq!(
            leg.verdicts, legs[0].verdicts,
            "merged verdict stream diverged between 1 and {} nodes",
            leg.nodes
        );
    }

    for leg in &legs {
        println!(
            "  {} node(s): {:>9.0} frames/s   p50 {:>7.1} µs   p99 {:>7.1} µs   hit rate {:.3}",
            leg.nodes, leg.frames_per_sec, leg.p50_us, leg.p99_us, leg.hit_rate
        );
    }
    let monotonic = legs
        .windows(2)
        .all(|w| w[1].frames_per_sec >= w[0].frames_per_sec);

    let chaos = run_chaos_leg(&model, &opts, &pool, &sequence, &legs[0].verdicts);
    println!(
        "  chaos: {} nodes, node {} killed mid-rollout, {} frames, books balanced: {}, \
         verdicts match: {}, {} failovers",
        chaos.nodes,
        chaos.killed_node,
        chaos.frames,
        chaos.books_balanced,
        chaos.verdicts_match,
        chaos.failovers
    );
    assert!(chaos.books_balanced, "chaos leg: books out of balance");
    assert!(chaos.verdicts_match, "chaos leg: verdict mismatch");
    assert_eq!(chaos.exhausted, 0, "chaos leg: a frame failed fleet-wide");

    let json = serde_json::json!({
        "schema": "polygraph.bench_fleet.v1",
        "seed": opts.seed,
        "frames": opts.frames as u64,
        "distinct": opts.distinct as u64,
        "distinct_keys": distinct_keys as u64,
        "window": MAX_BATCH_PER_GUARD as u64,
        "training_sessions": opts.sessions as u64,
        "per_node_cache": {
            "cache_shards": opts.cache_shards as u64,
            "cache_capacity": opts.cache_capacity as u64,
        },
        "verdicts_identical": true,
        "scaling_monotonic": monotonic,
        "legs": legs.iter().map(|leg| serde_json::json!({
            "nodes": leg.nodes as u64,
            "frames_per_sec": leg.frames_per_sec,
            "p50_us": leg.p50_us,
            "p99_us": leg.p99_us,
            "hit_rate": leg.hit_rate,
            "hits": leg.hits,
            "misses": leg.misses,
        })).collect::<Vec<_>>(),
        "chaos": {
            "nodes": chaos.nodes as u64,
            "killed_node": chaos.killed_node as u64,
            "frames": chaos.frames as u64,
            "books_balanced": chaos.books_balanced,
            "verdicts_match": chaos.verdicts_match,
            "failovers": chaos.failovers,
            "exhausted": chaos.exhausted,
        },
    });
    let rendered = serde_json::to_string_pretty(&json).expect("render bench json");
    if let Some(path) = &opts.out {
        if let Some(parent) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
        std::fs::write(path, rendered + "\n").expect("write bench json");
        println!("  wrote {path}");
    } else {
        println!("{rendered}");
    }
}
