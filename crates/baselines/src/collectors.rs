//! Simulated fine-grained fingerprinting collectors.

use browser_engine::{BrowserInstance, EngineFamily, Os};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::{json, Map, Value};
use std::time::Duration;

/// The fine-grained tools the paper benchmarks against (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineTool {
    /// FingerprintJS: fast, ~23 KB of underlying data.
    FingerprintJs,
    /// ClientJS: fast, ~10 KB, mostly user-agent-derived attributes.
    ClientJs,
    /// AmIUnique's extension: exhaustive, ~60 KB, ~1.5 s service time.
    AmIUnique,
}

impl BaselineTool {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BaselineTool::FingerprintJs => "FingerprintJS",
            BaselineTool::ClientJs => "ClientJS",
            BaselineTool::AmIUnique => "AmIUnique",
        }
    }

    /// The paper's measured average service time (Table 2). The simulated
    /// collectors are instantaneous; this model stands in for the network
    /// + in-page execution cost of the real tools.
    pub fn modelled_service_time(self) -> Duration {
        match self {
            BaselineTool::FingerprintJs => Duration::from_millis(51),
            BaselineTool::ClientJs => Duration::from_millis(37),
            BaselineTool::AmIUnique => Duration::from_millis(1500),
        }
    }
}

/// One collection run's output.
#[derive(Debug, Clone)]
pub struct CollectorOutput {
    /// The nested JSON payload (pre-hash, as the paper measured: "the
    /// underlying data structure's size, which is crucial for hashing").
    pub payload: Value,
    /// Which tool produced it.
    pub tool: BaselineTool,
}

impl CollectorOutput {
    /// Serialised payload size in bytes — Table 2's "Storage req." column.
    pub fn payload_bytes(&self) -> usize {
        serde_json::to_string(&self.payload)
            .map(|s| s.len())
            .unwrap_or(0)
    }
}

/// Per-*environment* attributes shared by the collectors: screen
/// geometry, timezone, languages. In live traffic every user machine gets
/// its own `env_seed` (real diversity the coarse-grained fingerprint
/// deliberately never collects); in a BrowserStack-style sweep the seed is
/// per OS image, because scripted launches reuse identical images.
struct EnvNoise {
    screen: (u32, u32),
    color_depth: u32,
    timezone: &'static str,
    language: &'static str,
}

fn env_noise(env_seed: u64) -> EnvNoise {
    const SCREENS: [(u32, u32); 6] = [
        (1920, 1080),
        (2560, 1440),
        (1366, 768),
        (1536, 864),
        (3840, 2160),
        (1280, 720),
    ];
    const TZS: [&str; 5] = [
        "America/New_York",
        "America/Chicago",
        "America/Los_Angeles",
        "Europe/London",
        "America/Phoenix",
    ];
    const LANGS: [&str; 4] = ["en-US", "en-GB", "es-US", "fr-FR"];
    let mut rng = ChaCha8Rng::seed_from_u64(env_seed);
    EnvNoise {
        screen: SCREENS[rng.gen_range(0..SCREENS.len())],
        color_depth: if rng.gen_bool(0.9) { 24 } else { 30 },
        timezone: TZS[rng.gen_range(0..TZS.len())],
        language: LANGS[rng.gen_range(0..LANGS.len())],
    }
}

/// Chance that ClientJS's plugin enumeration races page load and comes
/// back off by one (see `collect_clientjs`).
fn plugin_race_chance(os: Os) -> f64 {
    match os {
        Os::MacOsSonoma | Os::MacOsSequoia => 0.25,
        _ => 0.05,
    }
}

/// `navigator.platform` semantics: Windows 10 and 11 both report
/// `Win32`; every macOS reports `MacIntel`.
fn platform_token(os: Os) -> &'static str {
    match os {
        Os::Windows10 | Os::Windows11 => "Win32",
        Os::MacOsSonoma | Os::MacOsSequoia => "MacIntel",
        Os::Linux => "Linux x86_64",
    }
}

fn os_name(os: Os) -> &'static str {
    match os {
        Os::Windows10 => "Windows 10",
        Os::Windows11 => "Windows 11",
        Os::MacOsSonoma => "macOS Sonoma",
        Os::MacOsSequoia => "macOS Sequoia",
        Os::Linux => "Linux",
    }
}

fn font_list(os: Os, extended: bool) -> Vec<String> {
    let base: &[&str] = match os {
        Os::Windows10 | Os::Windows11 => &[
            "Arial",
            "Calibri",
            "Cambria",
            "Segoe UI",
            "Tahoma",
            "Times New Roman",
            "Verdana",
            "Consolas",
        ],
        Os::MacOsSonoma | Os::MacOsSequoia => &[
            "Helvetica",
            "Helvetica Neue",
            "Geneva",
            "Monaco",
            "San Francisco",
            "Menlo",
            "Avenir",
        ],
        Os::Linux => &["DejaVu Sans", "Liberation Sans", "Noto Sans", "Ubuntu"],
    };
    let mut fonts: Vec<String> = base.iter().map(|s| s.to_string()).collect();
    if extended {
        // The AmIUnique extension enumerates hundreds of fonts.
        for i in 0..300 {
            fonts.push(format!("Vendor Font Family {i:03} Regular"));
        }
    }
    fonts
}

/// Simulates a FingerprintJS run: ~70 components, some per-visit-unique
/// (canvas/audio hashes), some environment-bound, some engine-derived —
/// ~23 KB serialised. `env_seed` selects the machine environment;
/// `session_seed` drives per-visit randomness (render hashes, timing-
/// sensitive feature detections).
pub fn collect_fingerprintjs(
    browser: &BrowserInstance,
    os: Os,
    env_seed: u64,
    session_seed: u64,
) -> CollectorOutput {
    let noise = env_noise(env_seed);
    let mut visit_rng = ChaCha8Rng::seed_from_u64(session_seed ^ 0xF1A6);
    let canvas_hash: u64 = visit_rng.gen();
    let audio_hash: u64 = visit_rng.gen();
    let era = browser.era();
    let mut components = Map::new();

    components.insert(
        "canvas".into(),
        json!({ "value": format!("{canvas_hash:032x}"), "duration": 9 }),
    );
    components.insert(
        "audio".into(),
        json!({ "value": audio_hash as f64 / 1e12, "duration": 12 }),
    );
    components.insert(
        "screenResolution".into(),
        json!({ "value": [noise.screen.0, noise.screen.1], "duration": 0 }),
    );
    components.insert(
        "colorDepth".into(),
        json!({ "value": noise.color_depth, "duration": 0 }),
    );
    components.insert(
        "timezone".into(),
        json!({ "value": noise.timezone, "duration": 1 }),
    );
    components.insert(
        "languages".into(),
        json!({ "value": [[noise.language]], "duration": 0 }),
    );
    components.insert(
        "platform".into(),
        json!({ "value": platform_token(os), "duration": 0 }),
    );
    components.insert(
        "fonts".into(),
        json!({ "value": font_list(os, false), "duration": 38 }),
    );
    components.insert(
        "vendorFlavors".into(),
        json!({ "value": match browser.engine().family {
            EngineFamily::Blink => ["chrome"],
            EngineFamily::Gecko => ["firefox"],
            EngineFamily::EdgeHtml => ["edge"],
        }, "duration": 0 }),
    );

    // Engine-derived feature-detection grid: the part of FingerprintJS
    // that actually tracks the platform era (and lets it cluster at ~99%).
    // The last two detections are timing-sensitive (they race a frame
    // callback) and occasionally misfire — the per-visit noise behind the
    // paper's 99.21%/99.38% rather than 100%.
    let mut detects = Map::new();
    for i in 0..40u32 {
        let threshold = i as f64 * 0.55;
        let mut value = era.richness() >= threshold;
        if i >= 38 && visit_rng.gen::<f64>() < 0.015 {
            value = !value;
        }
        detects.insert(format!("feature{i:02}"), json!(value));
    }
    components.insert("featureDetection".into(), Value::Object(detects));

    // Era-correlated numeric probes (FingerprintJS reads a few DOM sizes).
    components.insert(
        "domShape".into(),
        json!({
            "element": browser.own_property_count("Element"),
            "document": browser.own_property_count("Document"),
        }),
    );

    // Padding components to reach the real tool's ~23 KB payload: math
    // constants, codec support strings, header echoes.
    let mut padding = Map::new();
    for i in 0..160u32 {
        padding.insert(
            format!("component{i:03}"),
            json!({
                "value": format!("static-component-value-{i:03}-{}", "x".repeat(64)),
                "duration": i % 7,
            }),
        );
    }
    components.insert("extras".into(), Value::Object(padding));

    CollectorOutput {
        payload: json!({ "version": "4.2.1", "components": Value::Object(components) }),
        tool: BaselineTool::FingerprintJs,
    }
}

/// Simulates a ClientJS run: a flat dictionary, mostly parsed out of the
/// user-agent string itself — ~10 KB serialised, very little non-UA
/// signal (which is why it clusters poorly in Appendix-5).
pub fn collect_clientjs(
    browser: &BrowserInstance,
    os: Os,
    env_seed: u64,
    session_seed: u64,
) -> CollectorOutput {
    let noise = env_noise(env_seed);
    let mut visit_rng = ChaCha8Rng::seed_from_u64(session_seed ^ 0xC11E);
    let ua = browser.claimed_user_agent();
    let payload = json!({
        // UA-derived fields (excluded before clustering, per Appendix-5).
        "userAgent": ua.to_ua_string(),
        "browser": ua.vendor.name(),
        "browserVersion": format!("{}.0.0.0", ua.version),
        "browserMajorVersion": ua.version,
        "engine": match browser.engine().family {
            EngineFamily::Blink => "WebKit",
            EngineFamily::Gecko => "Gecko",
            EngineFamily::EdgeHtml => "EdgeHTML",
        },
        "os": os_name(os),
        // The seven usable (non-UA) features of the paper's encoding.
        "currentResolution": format!("{}x{}", noise.screen.0, noise.screen.1),
        "colorDepth": noise.color_depth,
        "timeZone": noise.timezone,
        "language": noise.language,
        "isChrome": browser.engine().family == EngineFamily::Blink,
        "fontsCount": font_list(os, false).len(),
        // Plugin/mime enumeration: family-level plus a coarse era signal,
        // occasionally off by one when the enumeration races page load.
        // The race is far more common on macOS (Gatekeeper checks stall
        // the plugin scan), which is why the paper's ClientJS clustering
        // is weaker there (85.93%) than on Windows (93.60%).
        "pluginsCount": (if browser.engine().family == EngineFamily::Blink { 5u32 } else { 3 })
            + (visit_rng.gen::<f64>() < plugin_race_chance(os)) as u32,
        "mimeTypesCount": 2 + (browser.era().richness() / 5.0).round() as u32,
        // Padding mirroring ClientJS's verbose string dumps (~10 KB).
        "screenPrint": format!(
            "Current Resolution: {}x{}, Available Resolution: {}x{}, Color Depth: {}, \
             Device XDPI: 96, Device YDPI: 96 {}",
            noise.screen.0, noise.screen.1, noise.screen.0, noise.screen.1 - 40,
            noise.color_depth, "#".repeat(8800),
        ),
    });
    CollectorOutput {
        payload,
        tool: BaselineTool::ClientJs,
    }
}

/// Simulates the AmIUnique extension: an exhaustive dump — full font and
/// plugin enumerations, header echoes, canvas/WebGL renders — ~60 KB and
/// ~1.5 s of collection time in the real tool.
pub fn collect_amiunique(
    browser: &BrowserInstance,
    os: Os,
    env_seed: u64,
    session_seed: u64,
) -> CollectorOutput {
    let noise = env_noise(env_seed);
    let mut visit_rng = ChaCha8Rng::seed_from_u64(session_seed ^ 0xA1B2);
    let webgl_hash: u64 = visit_rng.gen();
    let ua = browser.claimed_user_agent();
    let mut headers = Map::new();
    for (k, v) in [
        ("User-Agent", ua.to_ua_string()),
        (
            "Accept",
            "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8".into(),
        ),
        ("Accept-Language", format!("{},en;q=0.5", noise.language)),
        ("Accept-Encoding", "gzip, deflate, br".into()),
    ] {
        headers.insert(k.into(), json!(v));
    }
    let mut attributes = Map::new();
    for i in 0..120u32 {
        attributes.insert(
            format!("attribute{i:03}"),
            json!(format!("observed-value-{i:03}-{}", "y".repeat(128))),
        );
    }
    let payload = json!({
        "headers": Value::Object(headers),
        "fonts": font_list(os, true),
        "canvas": format!("data:image/png;base64,{}", "A".repeat(24_000)),
        "webgl": { "renderer": "ANGLE (Simulated GPU Direct3D11)", "hash": format!("{webgl_hash:032x}") },
        "timezone": noise.timezone,
        "screen": { "width": noise.screen.0, "height": noise.screen.1, "depth": noise.color_depth },
        "attributes": Value::Object(attributes),
    });
    CollectorOutput {
        payload,
        tool: BaselineTool::AmIUnique,
    }
}

/// Dispatches to the right collector.
pub fn collect(
    tool: BaselineTool,
    browser: &BrowserInstance,
    os: Os,
    env_seed: u64,
    session_seed: u64,
) -> CollectorOutput {
    match tool {
        BaselineTool::FingerprintJs => collect_fingerprintjs(browser, os, env_seed, session_seed),
        BaselineTool::ClientJs => collect_clientjs(browser, os, env_seed, session_seed),
        BaselineTool::AmIUnique => collect_amiunique(browser, os, env_seed, session_seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser_engine::{UserAgent, Vendor};

    fn chrome() -> BrowserInstance {
        BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 112))
    }

    #[test]
    fn payload_sizes_match_table2_order_of_magnitude() {
        let b = chrome();
        let fpjs = collect_fingerprintjs(&b, Os::Windows10, 1, 1).payload_bytes();
        let cljs = collect_clientjs(&b, Os::Windows10, 1, 1).payload_bytes();
        let aiu = collect_amiunique(&b, Os::Windows10, 1, 1).payload_bytes();
        assert!(
            (18_000..30_000).contains(&fpjs),
            "FingerprintJS ~23KB, got {fpjs}"
        );
        assert!(
            (8_000..13_000).contains(&cljs),
            "ClientJS ~10KB, got {cljs}"
        );
        assert!(
            (50_000..75_000).contains(&aiu),
            "AmIUnique ~60KB, got {aiu}"
        );
    }

    #[test]
    fn service_time_model_matches_table2() {
        assert_eq!(
            BaselineTool::FingerprintJs
                .modelled_service_time()
                .as_millis(),
            51
        );
        assert_eq!(
            BaselineTool::ClientJs.modelled_service_time().as_millis(),
            37
        );
        assert_eq!(
            BaselineTool::AmIUnique.modelled_service_time().as_millis(),
            1500
        );
    }

    #[test]
    fn canvas_hash_is_per_session_unique() {
        let b = chrome();
        let a = collect_fingerprintjs(&b, Os::Windows10, 1, 1);
        let c = collect_fingerprintjs(&b, Os::Windows10, 1, 2);
        assert_ne!(
            a.payload["components"]["canvas"]["value"], c.payload["components"]["canvas"]["value"],
            "canvas hashes differ per session (the tracking signal the \
             coarse-grained fingerprint refuses to carry)"
        );
    }

    #[test]
    fn feature_detection_tracks_engine_era() {
        let old = BrowserInstance::genuine(UserAgent::new(Vendor::Chrome, 60));
        let new = chrome();
        let a = collect_fingerprintjs(&old, Os::Windows10, 1, 1);
        let b = collect_fingerprintjs(&new, Os::Windows10, 1, 1);
        assert_ne!(
            a.payload["components"]["featureDetection"],
            b.payload["components"]["featureDetection"]
        );
    }

    #[test]
    fn clientjs_exposes_mostly_ua_derived_fields() {
        let b = chrome();
        let out = collect_clientjs(&b, Os::Windows10, 3, 3);
        assert_eq!(out.payload["browserMajorVersion"], json!(112));
        assert!(out.payload["userAgent"]
            .as_str()
            .unwrap()
            .contains("Chrome/112"));
    }

    #[test]
    fn collect_dispatches() {
        let b = chrome();
        for tool in [
            BaselineTool::FingerprintJs,
            BaselineTool::ClientJs,
            BaselineTool::AmIUnique,
        ] {
            let out = collect(tool, &b, Os::Windows10, 9, 9);
            assert_eq!(out.tool, tool);
            assert!(out.payload_bytes() > 1000);
        }
    }
}
