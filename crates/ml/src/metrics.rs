//! Semi-supervised clustering metrics (Appendix-4, Formula 1).
//!
//! The paper's accuracy metric: for each *label* (user-agent string), the
//! cluster holding the majority of that label's samples is "its" cluster;
//! a sample is correct iff it lands in its label's majority cluster.
//! Accuracy is the fraction of correctly-assigned samples.

use crate::error::MlError;
use std::collections::BTreeMap;

/// Outcome of a majority-cluster evaluation.
///
/// Labels are kept in a `BTreeMap` so every walk over the per-label
/// clusters happens in sorted key order: retraining the pipeline on the
/// same data yields the same iteration order, which the semi-supervised
/// cluster table and the drift detector both depend on.
#[derive(Debug, Clone)]
pub struct ClusterAccuracy<L: Ord> {
    /// Fraction of samples assigned to their label's majority cluster.
    pub accuracy: f64,
    /// Majority cluster per label.
    pub label_clusters: BTreeMap<L, usize>,
    /// Number of misclustered samples.
    pub miscount: usize,
    /// Total samples evaluated.
    pub total: usize,
}

impl<L: Ord + Clone> ClusterAccuracy<L> {
    /// Per-label accuracy: fraction of that label's samples in its majority
    /// cluster. Used by the drift detector, which tracks accuracy of *new
    /// releases* individually (Table 6's "Accuracy" column).
    pub fn label_accuracy(labels: &[L], clusters: &[usize], label: &L) -> Option<f64> {
        let indices: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, l)| *l == label)
            .map(|(i, _)| i)
            .collect();
        if indices.is_empty() {
            return None;
        }
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for &i in &indices {
            *counts.entry(clusters[i]).or_default() += 1;
        }
        let majority = counts.values().copied().max().unwrap_or(0);
        Some(majority as f64 / indices.len() as f64)
    }
}

/// Computes the paper's majority-cluster accuracy (Formula 1).
///
/// `labels[i]` is the ground-truth label (user-agent) of sample `i`;
/// `clusters[i]` its predicted cluster. The slices must be equal-length and
/// non-empty.
pub fn majority_cluster_accuracy<L: Ord + Clone>(
    labels: &[L],
    clusters: &[usize],
) -> Result<ClusterAccuracy<L>, MlError> {
    if labels.is_empty() {
        return Err(MlError::EmptyInput);
    }
    if labels.len() != clusters.len() {
        return Err(MlError::DimensionMismatch {
            got: clusters.len(),
            expected: labels.len(),
            what: "cluster assignments",
        });
    }

    // label -> cluster -> count
    let mut per_label: BTreeMap<L, BTreeMap<usize, usize>> = BTreeMap::new();
    for (l, &c) in labels.iter().zip(clusters) {
        *per_label
            .entry(l.clone())
            .or_default()
            .entry(c)
            .or_default() += 1;
    }

    let mut label_clusters = BTreeMap::new();
    let mut correct = 0usize;
    for (l, counts) in &per_label {
        // Deterministic tie-break: lowest cluster id wins.
        let (&majority_cluster, &majority_count) = counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .expect("non-empty counts");
        label_clusters.insert(l.clone(), majority_cluster);
        correct += majority_count;
    }

    let total = labels.len();
    Ok(ClusterAccuracy {
        accuracy: correct as f64 / total as f64,
        label_clusters,
        miscount: total - correct,
        total,
    })
}

/// Inverts a label→cluster map into cluster→labels (sorted for stable
/// display) — the shape of the paper's Table 3.
pub fn clusters_to_labels<L: Clone + Ord>(
    label_clusters: &BTreeMap<L, usize>,
) -> Vec<(usize, Vec<L>)> {
    let mut by_cluster: BTreeMap<usize, Vec<L>> = BTreeMap::new();
    for (l, &c) in label_clusters {
        by_cluster.entry(c).or_default().push(l.clone());
    }
    let mut out: Vec<(usize, Vec<L>)> = by_cluster
        .into_iter()
        .map(|(c, mut ls)| {
            ls.sort();
            (c, ls)
        })
        .collect();
    out.sort_by_key(|(c, _)| *c);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_is_100_percent() {
        let labels = vec!["a", "a", "b", "b", "b"];
        let clusters = vec![0, 0, 1, 1, 1];
        let acc = majority_cluster_accuracy(&labels, &clusters).unwrap();
        assert_eq!(acc.accuracy, 1.0);
        assert_eq!(acc.miscount, 0);
        assert_eq!(acc.label_clusters["a"], 0);
        assert_eq!(acc.label_clusters["b"], 1);
    }

    #[test]
    fn minority_samples_count_as_misclustered() {
        // 3 of 4 "a" in cluster 0, 1 stray in cluster 1.
        let labels = vec!["a", "a", "a", "a"];
        let clusters = vec![0, 0, 0, 1];
        let acc = majority_cluster_accuracy(&labels, &clusters).unwrap();
        assert_eq!(acc.accuracy, 0.75);
        assert_eq!(acc.miscount, 1);
    }

    #[test]
    fn two_labels_sharing_a_cluster_is_fine() {
        // The paper's clusters hold several user-agents (e.g. Chrome 110-113
        // and Edge 110-113 share cluster 0); accuracy only requires each
        // label's samples to be *together*.
        let labels = vec!["chrome110", "chrome110", "edge110", "edge110"];
        let clusters = vec![0, 0, 0, 0];
        let acc = majority_cluster_accuracy(&labels, &clusters).unwrap();
        assert_eq!(acc.accuracy, 1.0);
    }

    #[test]
    fn tie_breaks_to_lowest_cluster() {
        let labels = vec!["a", "a"];
        let clusters = vec![1, 0];
        let acc = majority_cluster_accuracy(&labels, &clusters).unwrap();
        assert_eq!(acc.label_clusters["a"], 0);
        assert_eq!(acc.accuracy, 0.5);
    }

    #[test]
    fn input_validation() {
        let empty: Vec<&str> = vec![];
        assert!(majority_cluster_accuracy(&empty, &[]).is_err());
        assert!(majority_cluster_accuracy(&["a"], &[0, 1]).is_err());
    }

    #[test]
    fn label_accuracy_per_label() {
        let labels = vec!["a", "a", "a", "b"];
        let clusters = vec![0, 0, 1, 2];
        let a = ClusterAccuracy::label_accuracy(&labels, &clusters, &"a").unwrap();
        assert!((a - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(
            ClusterAccuracy::label_accuracy(&labels, &clusters, &"b"),
            Some(1.0)
        );
        assert_eq!(
            ClusterAccuracy::label_accuracy(&labels, &clusters, &"zz"),
            None
        );
    }

    #[test]
    fn clusters_to_labels_inverts_and_sorts() {
        let labels = vec!["b", "a", "c"];
        let clusters = vec![1, 1, 0];
        let acc = majority_cluster_accuracy(&labels, &clusters).unwrap();
        let table = clusters_to_labels(&acc.label_clusters);
        assert_eq!(table, vec![(0, vec!["c"]), (1, vec!["a", "b"])]);
    }
}
